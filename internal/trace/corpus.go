package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"tracescope/internal/trace/colfmt"
)

// Corpus is a collection of trace streams, the unit over which impact and
// causality analyses run. Stream order is significant: EventIDs reference
// streams by index.
type Corpus struct {
	Streams []*Stream
}

// NewCorpus builds a corpus over the given streams.
func NewCorpus(streams ...*Stream) *Corpus { return &Corpus{Streams: streams} }

// Add appends a stream and returns its index.
func (c *Corpus) Add(s *Stream) int {
	c.Streams = append(c.Streams, s)
	return len(c.Streams) - 1
}

// NumStreams returns the number of streams.
func (c *Corpus) NumStreams() int { return len(c.Streams) }

// NumInstances returns the total number of scenario instances recorded.
func (c *Corpus) NumInstances() int {
	n := 0
	for _, s := range c.Streams {
		n += len(s.Instances)
	}
	return n
}

// NumEvents returns the total number of events across all streams.
func (c *Corpus) NumEvents() int {
	n := 0
	for _, s := range c.Streams {
		n += len(s.Events)
	}
	return n
}

// TotalDuration sums the time spans of all streams.
func (c *Corpus) TotalDuration() Duration {
	var d Duration
	for _, s := range c.Streams {
		d += s.Duration()
	}
	return d
}

// Scenarios returns the sorted set of scenario names appearing in the
// corpus, with instance counts.
func (c *Corpus) Scenarios() []ScenarioCount {
	counts := make(map[string]int)
	for _, s := range c.Streams {
		for _, in := range s.Instances {
			counts[in.Scenario]++
		}
	}
	out := make([]ScenarioCount, 0, len(counts))
	for name, n := range counts {
		out = append(out, ScenarioCount{Name: name, Instances: n})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioCount pairs a scenario name with its instance count.
type ScenarioCount struct {
	Name      string
	Instances int
}

// InstanceRef locates a scenario instance within a corpus.
type InstanceRef struct {
	Stream   int
	Instance int
}

// InstancesOf returns references to every instance of the named scenario.
// An empty name selects all instances.
func (c *Corpus) InstancesOf(scenario string) []InstanceRef {
	var out []InstanceRef
	for si, s := range c.Streams {
		for ii, in := range s.Instances {
			if scenario == "" || in.Scenario == scenario {
				out = append(out, InstanceRef{Stream: si, Instance: ii})
			}
		}
	}
	return out
}

// Instance resolves a reference.
func (c *Corpus) Instance(ref InstanceRef) (*Stream, Instance) {
	s := c.Streams[ref.Stream]
	return s, s.Instances[ref.Instance]
}

// Validate validates every stream.
func (c *Corpus) Validate() error {
	for i, s := range c.Streams {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("trace: corpus stream %d: %w", i, err)
		}
	}
	return nil
}

// WriteDir persists the corpus in the current format (v4): one
// columnar binary file per stream, the corpus.intern frame/stack
// container, and a corpus.index recording per-stream and per-instance
// metadata, creating dir if needed. The index lets OpenDir enumerate
// scenarios and instances without decoding any stream.
func (c *Corpus) WriteDir(dir string) error {
	return c.writeDir(dir, indexVersion, false)
}

// WriteDirCompressed is WriteDir with flate compression on every event
// block — smaller files at decode-throughput cost.
func (c *Corpus) WriteDirCompressed(dir string) error {
	return c.writeDir(dir, indexVersion, true)
}

// WriteDirVersion persists the corpus in an older on-disk format
// (versions 2 and 3 write v1 stream files behind the corresponding
// index header), for conversion tooling and compatibility tests.
func (c *Corpus) WriteDirVersion(dir string, version int) error {
	return c.writeDir(dir, version, false)
}

// streamFileName names stream i's file: columnar .tsc4 containers from
// format v4 on, v1 .tscp containers before.
func streamFileName(i, version int) string {
	if version >= 4 {
		return fmt.Sprintf("stream-%05d.tsc4", i)
	}
	return fmt.Sprintf("stream-%05d.tscp", i)
}

func (c *Corpus) writeDir(dir string, version int, compress bool) error {
	if version < 2 || version > indexVersion {
		return fmt.Errorf("trace: cannot write corpus version %d (supported: 2 through %d)", version, indexVersion)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var it *InternTable
	var enc *colfmt.Encoder
	if version >= 4 {
		it = NewInternTable()
		enc = colfmt.NewEncoder(eventColumns)
	}
	metas := make([]StreamMeta, 0, len(c.Streams))
	for i, s := range c.Streams {
		name := streamFileName(i, version)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if version >= 4 {
			err = s.writeBinaryV4(f, it, enc, compress)
		} else {
			err = s.WriteBinary(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("trace: writing %s: %w", name, err)
		}
		m := c.StreamMeta(i)
		m.File = name
		metas = append(metas, m)
	}
	if version >= 4 {
		f, err := os.Create(filepath.Join(dir, internFile))
		if err != nil {
			return err
		}
		err = it.writeInternFile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("trace: writing %s: %w", internFile, err)
		}
	}
	index, err := os.Create(filepath.Join(dir, indexFile))
	if err != nil {
		return err
	}
	err = writeIndex(index, metas, version)
	if cerr := index.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadDir loads a corpus previously written with WriteDir eagerly into
// memory. Every on-disk version is accepted; index entries are
// validated (no duplicate or path-escaping file names) before any file
// is opened. For lazy, out-of-core access use OpenDir instead.
func ReadDir(dir string) (*Corpus, error) {
	d, err := OpenDir(dir)
	if err != nil {
		return nil, err
	}
	return d.Materialize()
}

// WriteTo streams every trace in the corpus to w, concatenated with a
// count header, for single-file interchange.
func (c *Corpus) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if _, err := fmt.Fprintf(cw, "TSCORPUS %d\n", len(c.Streams)); err != nil {
		return cw.n, err
	}
	for _, s := range c.Streams {
		if err := s.WriteBinary(cw); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadFrom reads a corpus written with WriteTo.
func ReadFrom(r io.Reader) (*Corpus, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: corpus header: %v", ErrBadFormat, err)
	}
	// Exact-match the header: fmt.Sscanf would accept trailing garbage
	// after the count.
	count, ok := strings.CutPrefix(strings.TrimSuffix(header, "\n"), "TSCORPUS ")
	if !ok {
		return nil, fmt.Errorf("%w: corpus header %q", ErrBadFormat, header)
	}
	n, err := strconv.Atoi(count)
	if err != nil {
		return nil, fmt.Errorf("%w: corpus header %q: %v", ErrBadFormat, header, err)
	}
	if n < 0 || n > maxTableLen {
		return nil, fmt.Errorf("%w: corpus stream count %d", ErrBadFormat, n)
	}
	c := &Corpus{}
	for i := 0; i < n; i++ {
		s, err := readBinary(br)
		if err != nil {
			return nil, fmt.Errorf("trace: corpus stream %d: %w", i, err)
		}
		c.Add(s)
	}
	return c, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// splitLines splits on '\n', tolerating "\r\n" endings so indexes
// written on Windows load correctly.
func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, strings.TrimSuffix(s[start:i], "\r"))
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, strings.TrimSuffix(s[start:], "\r"))
	}
	return out
}
