package trace

import "fmt"

// Slice returns a new stream containing the events overlapping
// [from, to), with times rebased to `from` and costs clipped to the
// window. Scenario instances overlapping the window are carried over
// (clipped); frame and stack tables are rebuilt to only what the slice
// references. Analysts use this to cut an incident window out of a long
// stream before sharing or re-analysing it.
func (s *Stream) Slice(from, to Time) (*Stream, error) {
	if to <= from {
		return nil, fmt.Errorf("trace: slice window [%d, %d) is empty", from, to)
	}
	out := NewStream(fmt.Sprintf("%s[%v,%v)", s.ID, Duration(from), Duration(to)))
	usedThreads := make(map[ThreadID]bool)
	for _, e := range s.Events {
		if e.Time >= to || e.End() <= from {
			continue
		}
		ne := e
		// Rebase and clip.
		start := e.Time
		if start < from {
			start = from
		}
		end := e.End()
		if end > to {
			end = to
		}
		ne.Time = start - from
		if e.Type == Unwait {
			ne.Cost = 0
		} else {
			ne.Cost = Duration(end - start)
		}
		ne.Stack = out.InternStack(reinternStack(s, out, e.Stack))
		out.AppendEvent(ne)
		usedThreads[e.TID] = true
		if e.Type == Unwait {
			usedThreads[e.WTID] = true
		}
	}
	for tid := range usedThreads {
		if ti, ok := s.Threads[tid]; ok {
			out.SetThread(tid, ti.Process, ti.Name)
		}
	}
	for _, in := range s.Instances {
		if in.Start >= to || in.End <= from {
			continue
		}
		ni := in
		if ni.Start < from {
			ni.Start = from
		}
		if ni.End > to {
			ni.End = to
		}
		ni.Start -= from
		ni.End -= from
		out.Instances = append(out.Instances, ni)
	}
	return out, nil
}

// reinternStack maps a stack of src into dst's tables.
func reinternStack(src, dst *Stream, id StackID) []FrameID {
	frames := src.Stack(id)
	if len(frames) == 0 {
		return nil
	}
	out := make([]FrameID, len(frames))
	for i, f := range frames {
		out[i] = dst.InternFrame(src.Frame(f))
	}
	return out
}

// Merge combines multiple streams from the same machine (for example two
// collection sessions) into one, offsetting each subsequent stream to
// start after the previous one ends plus gap, and remapping thread IDs to
// avoid collisions. The result carries all instances, similarly adjusted.
func Merge(id string, gap Duration, streams ...*Stream) (*Stream, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	out := NewStream(id)
	var offset Time
	var tidBase ThreadID
	for _, s := range streams {
		var maxTID ThreadID
		for _, e := range s.Events {
			ne := e
			ne.Time += offset
			ne.TID += tidBase
			if ne.WTID != NoThread {
				ne.WTID += tidBase
			}
			ne.Stack = out.InternStack(reinternStack(s, out, e.Stack))
			out.AppendEvent(ne)
			if e.TID > maxTID {
				maxTID = e.TID
			}
			if e.WTID > maxTID {
				maxTID = e.WTID
			}
		}
		for tid, ti := range s.Threads {
			out.SetThread(tid+tidBase, ti.Process, ti.Name)
			if tid > maxTID {
				maxTID = tid
			}
		}
		for _, in := range s.Instances {
			out.Instances = append(out.Instances, Instance{
				Scenario: in.Scenario,
				TID:      in.TID + tidBase,
				Start:    in.Start + offset,
				End:      in.End + offset,
			})
		}
		offset += Time(s.Duration() + gap)
		tidBase += maxTID + 1
	}
	out.SortEvents()
	return out, nil
}
