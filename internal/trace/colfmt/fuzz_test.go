package colfmt

import (
	"bytes"
	"testing"
)

// FuzzColBlockDecode throws arbitrary bytes at the block decoder: it
// must either decode cleanly or fail with an error, never panic or
// over-allocate, and anything it does decode must re-encode to a block
// that decodes to identical columns.
func FuzzColBlockDecode(f *testing.F) {
	e := NewEncoder(5)
	seed := func(types []byte, cols [][]int64, compress bool) {
		var buf bytes.Buffer
		if err := e.EncodeBlock(&buf, types, cols, compress); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed([]byte{0}, [][]int64{{0}, {0}, {0}, {0}, {0}}, false)
	seed([]byte{1, 2, 3}, [][]int64{{1, -1, 5}, {9, 9, 9}, {0, 0, 1}, {-1, -1, -1}, {1 << 40, 2, 3}}, false)
	big := make([]byte, DefaultBlockRows)
	cols := make([][]int64, 5)
	for c := range cols {
		cols[c] = make([]int64, DefaultBlockRows)
		for r := range cols[c] {
			cols[c][r] = int64(c * r)
		}
	}
	seed(big, cols, true)
	f.Add([]byte{0xff, 0x01, 0x00})
	f.Add([]byte("TSINTERN 1\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(5)
		rows, types, cols, n, err := d.DecodeBlock(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if rows != len(types) {
			t.Fatalf("rows %d but %d type bytes", rows, len(types))
		}
		// Re-encode and decode again: the columns must survive.
		var buf bytes.Buffer
		if err := NewEncoder(5).EncodeBlock(&buf, types, cols, false); err != nil {
			t.Fatalf("re-encode of decoded block: %v", err)
		}
		rows2, types2, cols2, _, err := NewDecoder(5).DecodeBlock(buf.Bytes())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if rows2 != rows || !bytes.Equal(types2, types) {
			t.Fatal("re-decoded block differs")
		}
		for c := range cols {
			for r := 0; r < rows; r++ {
				if cols2[c][r] != cols[c][r] {
					t.Fatalf("col %d row %d: %d != %d", c, r, cols2[c][r], cols[c][r])
				}
			}
		}
	})
}

// FuzzInternRecords throws arbitrary bytes at the intern-record parser.
func FuzzInternRecords(f *testing.F) {
	var buf bytes.Buffer
	if err := AppendFrame(&buf, "frame"); err != nil {
		f.Fatal(err)
	}
	if err := AppendStack(&buf, []uint32{0}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), 0)
	f.Add([]byte{'S', 0x01, 0x00}, 1)
	f.Fuzz(func(t *testing.T, data []byte, base int) {
		if base < 0 || base > 1<<20 {
			return
		}
		frames := 0
		err := ReadInternRecords(data, base,
			func(string) error { frames++; return nil },
			func(fs []uint32) error {
				for _, id := range fs {
					if int(id) >= base+frames {
						t.Fatalf("parser passed out-of-range frame id %d", id)
					}
				}
				return nil
			})
		_ = err
	})
}
