// Package colfmt implements the column-oriented block codec behind
// corpus format v4 (DESIGN.md §10).
//
// A v4 stream file stores its event sequence as a run of blocks. Each
// block holds up to MaxBlockRows rows transposed into columns: one
// byte-per-row type column followed by a fixed number of zig-zag varint
// columns (time delta, cost, thread, wake target, stack in the v4
// schema). Columnar layout keeps same-shaped values adjacent, which
// both shrinks the varints (deltas cluster near zero) and lets the
// decoder run one tight loop per column over a []byte with no
// per-event interface calls or allocations.
//
// Block wire format:
//
//	uvarint rows                    1 ≤ rows ≤ MaxBlockRows
//	byte    flags                   bit0 = payload is flate-compressed
//	[uvarint rawLen]                present iff compressed: payload size
//	                                after decompression
//	uvarint payloadLen              stored payload size
//	payload                         rows type bytes, then ncols columns
//	                                of rows zig-zag varints each
//
// The codec is symmetric and allocation-free in steady state: both
// Encoder and Decoder retain their scratch buffers (including the flate
// state, reset per block via flate.Resetter) across calls.
//
// The package also defines the appendable intern-record stream used by
// the corpus-level `corpus.intern` container: see AppendFrame,
// AppendStack, and ReadInternRecords.
package colfmt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// DefaultBlockRows is the row count encoders target per block: large
	// enough to amortise the header and give flate a useful window,
	// small enough that a decoder's column scratch stays cache-friendly.
	DefaultBlockRows = 4096
	// MaxBlockRows bounds the row count accepted from an untrusted block
	// header, so a corrupt prefix cannot demand a huge allocation.
	MaxBlockRows = 1 << 16
	// maxPayload bounds the stored and decompressed payload sizes read
	// from untrusted headers.
	maxPayload = 1 << 26
)

// flagCompressed marks a block whose payload is flate-compressed.
const flagCompressed = 0x01

// ErrCorrupt reports a malformed block or intern record.
var ErrCorrupt = errors.New("colfmt: corrupt input")

// An Encoder writes columnar blocks. It retains its payload and flate
// scratch across EncodeBlock calls; one Encoder must not be used
// concurrently.
type Encoder struct {
	ncols   int
	payload []byte
	comp    *flate.Writer
	cbuf    bytes.Buffer
}

// NewEncoder returns an encoder for blocks of ncols varint columns
// (plus the implicit leading type-byte column).
func NewEncoder(ncols int) *Encoder {
	return &Encoder{ncols: ncols}
}

// EncodeBlock writes one block holding len(types) rows. Every column in
// cols must have exactly len(types) values, len(cols) must equal the
// encoder's column count, and the row count must be in
// [1, MaxBlockRows]. With compress set the payload is flate-compressed
// when that actually saves bytes (tiny blocks can inflate, in which
// case the block is stored raw).
func (e *Encoder) EncodeBlock(w io.Writer, types []byte, cols [][]int64, compress bool) error {
	rows := len(types)
	if rows == 0 || rows > MaxBlockRows {
		return fmt.Errorf("colfmt: block row count %d out of range [1, %d]", rows, MaxBlockRows)
	}
	if len(cols) != e.ncols {
		return fmt.Errorf("colfmt: got %d columns, encoder configured for %d", len(cols), e.ncols)
	}
	for i, c := range cols {
		if len(c) != rows {
			return fmt.Errorf("colfmt: column %d has %d values for %d rows", i, len(c), rows)
		}
	}

	e.payload = append(e.payload[:0], types...)
	var vbuf [binary.MaxVarintLen64]byte
	for _, c := range cols {
		for _, v := range c {
			n := binary.PutVarint(vbuf[:], v)
			e.payload = append(e.payload, vbuf[:n]...)
		}
	}

	flags := byte(0)
	stored := e.payload
	if compress {
		if err := e.deflate(); err != nil {
			return err
		}
		if e.cbuf.Len() < len(e.payload) {
			flags |= flagCompressed
			stored = e.cbuf.Bytes()
		}
	}

	var head [3*binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(head[:], uint64(rows))
	head[n] = flags
	n++
	if flags&flagCompressed != 0 {
		n += binary.PutUvarint(head[n:], uint64(len(e.payload)))
	}
	n += binary.PutUvarint(head[n:], uint64(len(stored)))
	if _, err := w.Write(head[:n]); err != nil {
		return err
	}
	_, err := w.Write(stored)
	return err
}

// deflate compresses e.payload into e.cbuf, reusing the flate state.
func (e *Encoder) deflate() error {
	e.cbuf.Reset()
	if e.comp == nil {
		zw, err := flate.NewWriter(&e.cbuf, flate.BestSpeed)
		if err != nil {
			return err
		}
		e.comp = zw
	} else {
		e.comp.Reset(&e.cbuf)
	}
	if _, err := e.comp.Write(e.payload); err != nil {
		return err
	}
	return e.comp.Close()
}

// A Decoder reads columnar blocks. The slices returned by DecodeBlock
// alias the decoder's scratch and stay valid only until the next call;
// one Decoder must not be used concurrently.
type Decoder struct {
	ncols int
	types []byte
	cols  [][]int64
	raw   []byte
	fr    io.ReadCloser
}

// NewDecoder returns a decoder for blocks of ncols varint columns.
func NewDecoder(ncols int) *Decoder {
	d := &Decoder{ncols: ncols, cols: make([][]int64, ncols)}
	return d
}

// DecodeBlock decodes the block at the front of data, returning the row
// count, the type column, the varint columns, and the number of input
// bytes consumed. The returned slices are the decoder's scratch.
func (d *Decoder) DecodeBlock(data []byte) (rows int, types []byte, cols [][]int64, n int, err error) {
	v, hn := binary.Uvarint(data)
	if hn <= 0 || v == 0 || v > MaxBlockRows {
		return 0, nil, nil, 0, fmt.Errorf("%w: block row count", ErrCorrupt)
	}
	rows = int(v)
	n = hn
	if n >= len(data) {
		return 0, nil, nil, 0, fmt.Errorf("%w: truncated block header", ErrCorrupt)
	}
	flags := data[n]
	n++
	if flags&^flagCompressed != 0 {
		return 0, nil, nil, 0, fmt.Errorf("%w: unknown block flags %#x", ErrCorrupt, flags)
	}
	rawLen := -1
	if flags&flagCompressed != 0 {
		v, hn = binary.Uvarint(data[n:])
		if hn <= 0 || v > maxPayload {
			return 0, nil, nil, 0, fmt.Errorf("%w: block raw length", ErrCorrupt)
		}
		rawLen = int(v)
		n += hn
	}
	v, hn = binary.Uvarint(data[n:])
	if hn <= 0 || v > maxPayload {
		return 0, nil, nil, 0, fmt.Errorf("%w: block payload length", ErrCorrupt)
	}
	payloadLen := int(v)
	n += hn
	if payloadLen > len(data)-n {
		return 0, nil, nil, 0, fmt.Errorf("%w: truncated block payload", ErrCorrupt)
	}
	payload := data[n : n+payloadLen]
	n += payloadLen

	if flags&flagCompressed != 0 {
		payload, err = d.inflate(payload, rawLen)
		if err != nil {
			return 0, nil, nil, 0, err
		}
	}

	// Type column: one byte per row.
	if len(payload) < rows {
		return 0, nil, nil, 0, fmt.Errorf("%w: truncated type column", ErrCorrupt)
	}
	d.types = append(d.types[:0], payload[:rows]...)
	off := rows

	// Varint columns. The zig-zag varint decode is inlined rather than
	// delegated to binary.Varint: this loop runs once per value over
	// hundreds of millions of values on a paper-scale corpus, and the
	// per-call re-slice plus non-inlinable call costs more than the
	// decode itself. Acceptance matches binary.Varint exactly (at most
	// ten bytes, tenth byte <= 1).
	for c := 0; c < d.ncols; c++ {
		col := d.cols[c]
		if cap(col) < rows {
			col = make([]int64, rows)
		}
		col = col[:rows]
		for r := 0; r < rows; r++ {
			var ux uint64
			var shift uint
			for {
				if off >= len(payload) || shift > 63 {
					return 0, nil, nil, 0, fmt.Errorf("%w: column %d row %d", ErrCorrupt, c, r)
				}
				b := payload[off]
				off++
				if b < 0x80 {
					if shift == 63 && b > 1 {
						return 0, nil, nil, 0, fmt.Errorf("%w: column %d row %d", ErrCorrupt, c, r)
					}
					ux |= uint64(b) << shift
					break
				}
				ux |= uint64(b&0x7f) << shift
				shift += 7
			}
			col[r] = int64(ux>>1) ^ -int64(ux&1)
		}
		d.cols[c] = col
	}
	if off != len(payload) {
		return 0, nil, nil, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(payload)-off)
	}
	return rows, d.types, d.cols, n, nil
}

// BlockInfo summarises one block's header, as read by SkimBlock.
type BlockInfo struct {
	Rows       int
	StoredLen  int // payload bytes on disk
	RawLen     int // payload bytes after decompression (== StoredLen when raw)
	Compressed bool
}

// SkimBlock parses the block header at the front of data without
// decoding the payload, returning its summary and the total bytes the
// block occupies. Corpus statistics (tracedump -stats) use this to walk
// a stream file's blocks cheaply.
func SkimBlock(data []byte) (BlockInfo, int, error) {
	var bi BlockInfo
	v, hn := binary.Uvarint(data)
	if hn <= 0 || v == 0 || v > MaxBlockRows {
		return bi, 0, fmt.Errorf("%w: block row count", ErrCorrupt)
	}
	bi.Rows = int(v)
	n := hn
	if n >= len(data) {
		return bi, 0, fmt.Errorf("%w: truncated block header", ErrCorrupt)
	}
	flags := data[n]
	n++
	if flags&^flagCompressed != 0 {
		return bi, 0, fmt.Errorf("%w: unknown block flags %#x", ErrCorrupt, flags)
	}
	bi.Compressed = flags&flagCompressed != 0
	if bi.Compressed {
		v, hn = binary.Uvarint(data[n:])
		if hn <= 0 || v > maxPayload {
			return bi, 0, fmt.Errorf("%w: block raw length", ErrCorrupt)
		}
		bi.RawLen = int(v)
		n += hn
	}
	v, hn = binary.Uvarint(data[n:])
	if hn <= 0 || v > maxPayload {
		return bi, 0, fmt.Errorf("%w: block payload length", ErrCorrupt)
	}
	bi.StoredLen = int(v)
	n += hn
	if !bi.Compressed {
		bi.RawLen = bi.StoredLen
	}
	if bi.StoredLen > len(data)-n {
		return bi, 0, fmt.Errorf("%w: truncated block payload", ErrCorrupt)
	}
	return bi, n + bi.StoredLen, nil
}

// inflate decompresses a block payload into the decoder's raw scratch,
// reusing the flate reader via flate.Resetter.
func (d *Decoder) inflate(payload []byte, rawLen int) ([]byte, error) {
	src := bytes.NewReader(payload)
	if d.fr == nil {
		d.fr = flate.NewReader(src)
	} else if err := d.fr.(flate.Resetter).Reset(src, nil); err != nil {
		return nil, fmt.Errorf("%w: flate reset: %v", ErrCorrupt, err)
	}
	if cap(d.raw) < rawLen {
		d.raw = make([]byte, rawLen)
	}
	d.raw = d.raw[:rawLen]
	if _, err := io.ReadFull(d.fr, d.raw); err != nil {
		return nil, fmt.Errorf("%w: flate payload: %v", ErrCorrupt, err)
	}
	// The declared raw length must be exact, or the block header lies.
	var tail [1]byte
	if n, _ := d.fr.Read(tail[:]); n != 0 {
		return nil, fmt.Errorf("%w: flate payload longer than declared", ErrCorrupt)
	}
	return d.raw, nil
}
