package colfmt

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The corpus-level intern container (`corpus.intern`) is an appendable
// record stream: a text header line followed by binary records, each
// either a frame string or a stack of previously defined frame IDs.
// Appenders only ever add records at the end — IDs are assigned in
// record order — so a crashed writer leaves at worst trailing orphan
// records that no stream file references, never a corrupt table.
//
// Record wire format:
//
//	'F' uvarint len | len bytes          frame string (next frame ID)
//	'S' uvarint n | n × uvarint frameID  stack (next stack ID)

// InternMagic is the first line of a corpus.intern file.
const InternMagic = "TSINTERN 1\n"

const (
	recFrame = 'F'
	recStack = 'S'
	// maxInternString bounds a frame string read from untrusted input.
	maxInternString = 1 << 20
	// maxInternStack bounds a stack's frame count.
	maxInternStack = 1 << 16
)

// AppendFrame writes one frame record.
func AppendFrame(w io.Writer, frame string) error {
	if len(frame) > maxInternString {
		return fmt.Errorf("colfmt: frame string of %d bytes exceeds limit", len(frame))
	}
	var buf [1 + binary.MaxVarintLen64]byte
	buf[0] = recFrame
	n := 1 + binary.PutUvarint(buf[1:], uint64(len(frame)))
	if _, err := w.Write(buf[:n]); err != nil {
		return err
	}
	_, err := io.WriteString(w, frame)
	return err
}

// AppendStack writes one stack record referencing frame IDs that must
// already have been appended.
func AppendStack(w io.Writer, frames []uint32) error {
	if len(frames) > maxInternStack {
		return fmt.Errorf("colfmt: stack of %d frames exceeds limit", len(frames))
	}
	buf := make([]byte, 0, 1+(len(frames)+1)*binary.MaxVarintLen32)
	var vbuf [binary.MaxVarintLen64]byte
	buf = append(buf, recStack)
	n := binary.PutUvarint(vbuf[:], uint64(len(frames)))
	buf = append(buf, vbuf[:n]...)
	for _, f := range frames {
		n = binary.PutUvarint(vbuf[:], uint64(f))
		buf = append(buf, vbuf[:n]...)
	}
	_, err := w.Write(buf)
	return err
}

// ReadInternRecords parses every record in data (the file body after
// the header line), invoking frame for each frame record and stack for
// each stack record, in file order. The slice passed to stack is
// scratch reused across calls — callers must copy what they keep. Frame
// IDs inside stack records are validated against the number of frames
// seen so far plus base (the frame count already loaded by a previous
// incremental read).
func ReadInternRecords(data []byte, base int, frame func(string) error, stack func([]uint32) error) error {
	nFrames := base
	var scratch []uint32
	for off := 0; off < len(data); {
		rec := data[off]
		off++
		switch rec {
		case recFrame:
			v, n := binary.Uvarint(data[off:])
			if n <= 0 || v > maxInternString {
				return fmt.Errorf("%w: frame record length", ErrCorrupt)
			}
			off += n
			if uint64(len(data)-off) < v {
				return fmt.Errorf("%w: truncated frame record", ErrCorrupt)
			}
			if err := frame(string(data[off : off+int(v)])); err != nil {
				return err
			}
			off += int(v)
			nFrames++
		case recStack:
			v, n := binary.Uvarint(data[off:])
			if n <= 0 || v > maxInternStack {
				return fmt.Errorf("%w: stack record length", ErrCorrupt)
			}
			off += n
			scratch = scratch[:0]
			for i := uint64(0); i < v; i++ {
				f, n := binary.Uvarint(data[off:])
				if n <= 0 {
					return fmt.Errorf("%w: stack record frame id", ErrCorrupt)
				}
				if f >= uint64(nFrames) {
					return fmt.Errorf("%w: stack references frame %d of %d", ErrCorrupt, f, nFrames)
				}
				off += n
				scratch = append(scratch, uint32(f))
			}
			if err := stack(scratch); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unknown intern record %#x", ErrCorrupt, rec)
		}
	}
	return nil
}
