package colfmt

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// encodeOne encodes a single block and returns its bytes.
func encodeOne(t *testing.T, e *Encoder, types []byte, cols [][]int64, compress bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.EncodeBlock(&buf, types, cols, compress); err != nil {
		t.Fatalf("EncodeBlock: %v", err)
	}
	return buf.Bytes()
}

func testRoundTrip(t *testing.T, compress bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	e := NewEncoder(5)
	d := NewDecoder(5)
	for _, rows := range []int{1, 7, 100, DefaultBlockRows, MaxBlockRows} {
		types := make([]byte, rows)
		cols := make([][]int64, 5)
		for c := range cols {
			cols[c] = make([]int64, rows)
		}
		for r := 0; r < rows; r++ {
			types[r] = byte(rng.Intn(4))
			for c := range cols {
				switch rng.Intn(4) {
				case 0:
					cols[c][r] = int64(rng.Intn(16)) - 8
				case 1:
					cols[c][r] = rng.Int63n(1 << 20)
				case 2:
					cols[c][r] = -rng.Int63n(1 << 40)
				default:
					cols[c][r] = int64(math.MinInt64) + rng.Int63()
				}
			}
		}
		data := encodeOne(t, e, types, cols, compress)
		gotRows, gotTypes, gotCols, n, err := d.DecodeBlock(data)
		if err != nil {
			t.Fatalf("rows=%d: DecodeBlock: %v", rows, err)
		}
		if n != len(data) {
			t.Fatalf("rows=%d: consumed %d of %d bytes", rows, n, len(data))
		}
		if gotRows != rows {
			t.Fatalf("rows=%d: decoded %d rows", rows, gotRows)
		}
		if !bytes.Equal(gotTypes, types) {
			t.Fatalf("rows=%d: type column mismatch", rows)
		}
		for c := range cols {
			for r := range cols[c] {
				if gotCols[c][r] != cols[c][r] {
					t.Fatalf("rows=%d: col %d row %d: got %d want %d",
						rows, c, r, gotCols[c][r], cols[c][r])
				}
			}
		}
	}
}

func TestRoundTrip(t *testing.T)           { testRoundTrip(t, false) }
func TestRoundTripCompressed(t *testing.T) { testRoundTrip(t, true) }

func TestMultipleBlocksSharedScratch(t *testing.T) {
	e := NewEncoder(2)
	d := NewDecoder(2)
	var buf bytes.Buffer
	want := [][2][]int64{
		{{1, 2, 3}, {-1, -2, -3}},
		{{9}, {0}},
		{{5, 5}, {1 << 50, -(1 << 50)}},
	}
	for _, blk := range want {
		types := make([]byte, len(blk[0]))
		if err := e.EncodeBlock(&buf, types, [][]int64{blk[0], blk[1]}, true); err != nil {
			t.Fatalf("EncodeBlock: %v", err)
		}
	}
	data := buf.Bytes()
	for i, blk := range want {
		rows, _, cols, n, err := d.DecodeBlock(data)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if rows != len(blk[0]) {
			t.Fatalf("block %d: rows %d want %d", i, rows, len(blk[0]))
		}
		for c := 0; c < 2; c++ {
			for r := 0; r < rows; r++ {
				if cols[c][r] != blk[c][r] {
					t.Fatalf("block %d col %d row %d: got %d want %d", i, c, r, cols[c][r], blk[c][r])
				}
			}
		}
		data = data[n:]
	}
	if len(data) != 0 {
		t.Fatalf("%d bytes left over", len(data))
	}
}

func TestEncodeBlockRejectsBadShapes(t *testing.T) {
	e := NewEncoder(2)
	var buf bytes.Buffer
	if err := e.EncodeBlock(&buf, nil, [][]int64{nil, nil}, false); err == nil {
		t.Fatal("empty block accepted")
	}
	big := make([]byte, MaxBlockRows+1)
	cols := [][]int64{make([]int64, MaxBlockRows+1), make([]int64, MaxBlockRows+1)}
	if err := e.EncodeBlock(&buf, big, cols, false); err == nil {
		t.Fatal("oversized block accepted")
	}
	if err := e.EncodeBlock(&buf, []byte{1}, [][]int64{{1}}, false); err == nil {
		t.Fatal("wrong column count accepted")
	}
	if err := e.EncodeBlock(&buf, []byte{1}, [][]int64{{1}, {1, 2}}, false); err == nil {
		t.Fatal("ragged column accepted")
	}
}

func TestDecodeBlockRejectsCorruption(t *testing.T) {
	e := NewEncoder(1)
	d := NewDecoder(1)
	good := encodeOne(t, e, []byte{1, 2}, [][]int64{{10, -10}}, false)

	cases := map[string][]byte{
		"empty":            nil,
		"zero rows":        {0x00},
		"huge rows":        {0xff, 0xff, 0xff, 0xff, 0x7f},
		"missing flags":    good[:1],
		"unknown flags":    append(append([]byte{}, good[0], 0x80), good[2:]...),
		"truncated":        good[:len(good)-1],
		"trailing payload": func() []byte { b := append([]byte{}, good...); b[2]++; return append(b, 0) }(),
	}
	for name, data := range cases {
		if _, _, _, _, err := d.DecodeBlock(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

func TestCompressedTinyBlockStaysRaw(t *testing.T) {
	// A one-row block inflates under flate; the encoder must fall back
	// to raw storage rather than grow the file.
	e := NewEncoder(1)
	d := NewDecoder(1)
	data := encodeOne(t, e, []byte{3}, [][]int64{{7}}, true)
	if data[1]&flagCompressed != 0 {
		t.Fatal("tiny block stored compressed")
	}
	if _, _, _, _, err := d.DecodeBlock(data); err != nil {
		t.Fatalf("DecodeBlock: %v", err)
	}
}

func TestCompressionShrinksRepetitiveBlocks(t *testing.T) {
	rows := DefaultBlockRows
	types := make([]byte, rows)
	col := make([]int64, rows)
	for i := range col {
		col[i] = 12345
	}
	e := NewEncoder(1)
	raw := encodeOne(t, e, types, [][]int64{col}, false)
	comp := encodeOne(t, e, types, [][]int64{col}, true)
	if len(comp) >= len(raw) {
		t.Fatalf("compressed block (%d bytes) not smaller than raw (%d bytes)", len(comp), len(raw))
	}
}

func TestInternRecordsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []string{"alloc", "lock", "", "dma_wait"}
	stacks := [][]uint32{{0}, {0, 1}, {3, 2, 1, 0}, {}}
	for i, f := range frames {
		if err := AppendFrame(&buf, f); err != nil {
			t.Fatalf("AppendFrame %d: %v", i, err)
		}
	}
	for i, st := range stacks {
		if err := AppendStack(&buf, st); err != nil {
			t.Fatalf("AppendStack %d: %v", i, err)
		}
	}
	var gotFrames []string
	var gotStacks [][]uint32
	err := ReadInternRecords(buf.Bytes(), 0,
		func(s string) error { gotFrames = append(gotFrames, s); return nil },
		func(fs []uint32) error { gotStacks = append(gotStacks, append([]uint32{}, fs...)); return nil })
	if err != nil {
		t.Fatalf("ReadInternRecords: %v", err)
	}
	if len(gotFrames) != len(frames) || len(gotStacks) != len(stacks) {
		t.Fatalf("got %d frames / %d stacks, want %d / %d",
			len(gotFrames), len(gotStacks), len(frames), len(stacks))
	}
	for i := range frames {
		if gotFrames[i] != frames[i] {
			t.Errorf("frame %d: got %q want %q", i, gotFrames[i], frames[i])
		}
	}
	for i := range stacks {
		if len(gotStacks[i]) != len(stacks[i]) {
			t.Fatalf("stack %d: got %v want %v", i, gotStacks[i], stacks[i])
		}
		for j := range stacks[i] {
			if gotStacks[i][j] != stacks[i][j] {
				t.Errorf("stack %d frame %d: got %d want %d", i, j, gotStacks[i][j], stacks[i][j])
			}
		}
	}
}

func TestInternRecordsValidateFrameIDs(t *testing.T) {
	var buf bytes.Buffer
	if err := AppendFrame(&buf, "only"); err != nil {
		t.Fatal(err)
	}
	if err := AppendStack(&buf, []uint32{1}); err != nil { // frame 1 undefined
		t.Fatal(err)
	}
	err := ReadInternRecords(buf.Bytes(), 0,
		func(string) error { return nil }, func([]uint32) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	// With base=1 the same record stream is valid: one frame was loaded
	// by a previous incremental read, so this file defines frame 1.
	err = ReadInternRecords(buf.Bytes(), 1,
		func(string) error { return nil }, func([]uint32) error { return nil })
	if err != nil {
		t.Fatalf("incremental read with base: %v", err)
	}
}

func TestInternRecordsRejectGarbage(t *testing.T) {
	cases := map[string][]byte{
		"unknown record": {'X'},
		"truncated len":  {'F', 0x80},
		"truncated body": {'F', 0x05, 'a'},
		"huge string":    {'F', 0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, data := range cases {
		err := ReadInternRecords(data, 0,
			func(string) error { return nil }, func([]uint32) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

func BenchmarkDecodeBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	rows := DefaultBlockRows
	types := make([]byte, rows)
	cols := make([][]int64, 5)
	for c := range cols {
		cols[c] = make([]int64, rows)
		for r := range cols[c] {
			cols[c][r] = rng.Int63n(1 << 16)
		}
	}
	var buf bytes.Buffer
	if err := NewEncoder(5).EncodeBlock(&buf, types, cols, false); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	d := NewDecoder(5)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := d.DecodeBlock(data); err != nil {
			b.Fatal(err)
		}
	}
}
