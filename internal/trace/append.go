package trace

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// Appender grows a corpus directory one stream at a time without ever
// rewriting what is already there: each Append writes one new stream
// file and appends its metadata records to the version-3 corpus.index.
// This is the continuous-ingestion write path — a DirSource opened over
// the same directory picks the new streams up with Reload, reading only
// the index, and every previously assigned stream index stays valid
// because the index is append-only.
//
// Crash safety: the stream file is fully written and closed before its
// index records are appended, so a crash between the two leaves an
// orphan stream file (overwritten by the next append of that index)
// but never an index entry pointing at a missing or partial file.
//
// An Appender is not safe for concurrent use, and exactly one Appender
// must own a directory at a time; the ingest server serializes both.
type Appender struct {
	dir     string
	n       int  // streams already indexed
	fresh   bool // index does not exist yet; create with a v3 header
	version int  // record format to append in (2 or 3)
}

// OpenAppender opens dir for append-only corpus growth, creating the
// directory if needed. An existing corpus continues from its current
// stream count in its own index version (2 or 3; legacy v1 indexes
// carry no metadata and are rejected — rewrite them with WriteDir
// first). A missing index starts an empty version-3 corpus.
func OpenAppender(dir string) (*Appender, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	a := &Appender{dir: dir, version: indexVersion}
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if os.IsNotExist(err) {
		a.fresh = true
		return a, nil
	}
	if err != nil {
		return nil, err
	}
	metas, version, err := parseIndex(string(data))
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", indexFile, err)
	}
	if version < 2 {
		return nil, fmt.Errorf("trace: %s: appending needs a version >= 2 index; rewrite the legacy corpus with WriteDir first", indexFile)
	}
	a.n = len(metas)
	a.version = version
	return a, nil
}

// NumStreams returns the number of streams currently indexed.
func (a *Appender) NumStreams() int { return a.n }

// Append validates s, writes it as the corpus's next stream file, and
// appends its metadata records to the index. It returns the stream's
// index in the corpus — the index a DirSource over the same directory
// assigns it after Reload.
func (a *Appender) Append(s *Stream) (int, error) {
	if err := s.Validate(); err != nil {
		return 0, fmt.Errorf("trace: appending stream: %w", err)
	}
	idx := a.n
	name := fmt.Sprintf("stream-%05d.tscp", idx)
	if err := a.writeStreamFile(name, s); err != nil {
		return 0, err
	}
	m := StreamMeta{
		File:      name,
		ID:        s.ID,
		Events:    len(s.Events),
		Duration:  s.Duration(),
		Instances: s.Instances,
	}
	if err := a.appendIndexRecord(idx, m); err != nil {
		return 0, err
	}
	a.n++
	a.fresh = false
	return idx, nil
}

// writeStreamFile writes one stream file, surfacing close errors (a
// short write otherwise goes unnoticed until decode).
func (a *Appender) writeStreamFile(name string, s *Stream) error {
	f, err := os.Create(filepath.Join(a.dir, name))
	if err != nil {
		return err
	}
	err = s.WriteBinary(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: writing %s: %w", name, err)
	}
	return nil
}

// appendIndexRecord appends one stream's records to the index, writing
// the version header first when the index is being created.
func (a *Appender) appendIndexRecord(seq int, m StreamMeta) error {
	f, err := os.OpenFile(filepath.Join(a.dir, indexFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if a.fresh {
		fmt.Fprintf(bw, "%s %d\n", indexMagic, indexVersion)
	}
	if a.version >= 3 {
		err = writeStreamRecord(bw, seq, m)
	} else {
		err = writeStreamRecordV2(bw, m)
	}
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: appending to %s: %w", indexFile, err)
	}
	return nil
}

// writeStreamRecordV2 writes one version-2 stream record (no sequence
// number) — used when appending to a corpus whose index predates v3.
func writeStreamRecordV2(bw *bufio.Writer, m StreamMeta) error {
	if _, err := fmt.Fprintf(bw, "s %q %q %d %d %d\n",
		m.File, m.ID, m.Events, int64(m.Duration), len(m.Instances)); err != nil {
		return err
	}
	for _, in := range m.Instances {
		if _, err := fmt.Fprintf(bw, "i %q %d %d %d\n",
			in.Scenario, in.TID, int64(in.Start), int64(in.End)); err != nil {
			return err
		}
	}
	return nil
}
