package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"tracescope/internal/trace/colfmt"
)

// Appender grows a corpus directory one stream at a time without ever
// rewriting what is already there: each Append writes one new stream
// file and appends its metadata records to the version-3 corpus.index.
// This is the continuous-ingestion write path — a DirSource opened over
// the same directory picks the new streams up with Reload, reading only
// the index, and every previously assigned stream index stays valid
// because the index is append-only.
//
// Crash safety: new intern records land in corpus.intern first, the
// stream file is fully written and closed second, and the index records
// are appended last. A crash at any point leaves at worst orphan intern
// records or an orphan stream file (overwritten by the next append of
// that index), never an index entry pointing at a missing or partial
// file or a stream file referencing unflushed intern records.
//
// An Appender is not safe for concurrent use, and exactly one Appender
// must own a directory at a time; the ingest server serializes both.
type Appender struct {
	dir     string
	n       int  // streams already indexed
	fresh   bool // index does not exist yet; create with a header
	version int  // record format to append in (2, 3, or 4)

	// v4 state: the corpus intern table (source of truth while this
	// appender owns the directory) and the reusable block encoder.
	intern   *InternTable
	enc      *colfmt.Encoder
	compress bool
}

// OpenAppender opens dir for append-only corpus growth, creating the
// directory if needed. An existing corpus continues from its current
// stream count in its own index version (2, 3, or 4; legacy v1 indexes
// carry no metadata and are rejected — rewrite them with WriteDir
// first). A missing index starts an empty version-4 corpus.
func OpenAppender(dir string) (*Appender, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	a := &Appender{dir: dir, version: indexVersion}
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if os.IsNotExist(err) {
		a.fresh = true
		a.intern = NewInternTable()
		return a, nil
	}
	if err != nil {
		return nil, err
	}
	metas, version, err := parseIndex(string(data))
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", indexFile, err)
	}
	if version < 2 {
		return nil, fmt.Errorf("trace: %s: appending needs a version >= 2 index; rewrite the legacy corpus with WriteDir first", indexFile)
	}
	a.n = len(metas)
	a.version = version
	if version >= 4 {
		idata, err := os.ReadFile(filepath.Join(dir, internFile))
		if err != nil {
			return nil, fmt.Errorf("trace: version-%d corpus: %w", version, err)
		}
		a.intern, err = readInternTable(idata)
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// SetCompression toggles flate compression of event blocks for
// subsequent v4 appends (off by default; decode throughput beats size
// on the analysis path).
func (a *Appender) SetCompression(on bool) { a.compress = on }

// NumStreams returns the number of streams currently indexed.
func (a *Appender) NumStreams() int { return a.n }

// Append validates s, writes it as the corpus's next stream file, and
// appends its metadata records to the index. It returns the stream's
// index in the corpus — the index a DirSource over the same directory
// assigns it after Reload.
func (a *Appender) Append(s *Stream) (int, error) {
	if err := s.Validate(); err != nil {
		return 0, fmt.Errorf("trace: appending stream: %w", err)
	}
	idx := a.n
	name := streamFileName(idx, a.version)
	if a.version >= 4 {
		if err := a.writeStreamFileV4(name, s); err != nil {
			return 0, err
		}
	} else if err := a.writeStreamFile(name, s); err != nil {
		return 0, err
	}
	m := StreamMeta{
		File:      name,
		ID:        s.ID,
		Events:    len(s.Events),
		Duration:  s.Duration(),
		Instances: s.Instances,
	}
	if err := a.appendIndexRecord(idx, m); err != nil {
		return 0, err
	}
	a.n++
	a.fresh = false
	return idx, nil
}

// writeStreamFile writes one stream file, surfacing close errors (a
// short write otherwise goes unnoticed until decode).
func (a *Appender) writeStreamFile(name string, s *Stream) error {
	f, err := os.Create(filepath.Join(a.dir, name))
	if err != nil {
		return err
	}
	err = s.WriteBinary(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: writing %s: %w", name, err)
	}
	return nil
}

// writeStreamFileV4 encodes s against the corpus intern table, flushes
// any new intern records to corpus.intern, and only then writes the
// stream file — so no stream file on disk ever references an unflushed
// intern record.
func (a *Appender) writeStreamFileV4(name string, s *Stream) error {
	if a.enc == nil {
		a.enc = colfmt.NewEncoder(eventColumns)
	}
	var buf bytes.Buffer
	if err := s.writeBinaryV4(&buf, a.intern, a.enc, a.compress); err != nil {
		return fmt.Errorf("trace: encoding %s: %w", name, err)
	}
	if err := a.appendInternRecords(); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(a.dir, name))
	if err != nil {
		return err
	}
	_, err = f.Write(buf.Bytes())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: writing %s: %w", name, err)
	}
	return nil
}

// appendInternRecords lands intern records added since the last flush,
// creating corpus.intern with its header on first use. On failure the
// flushed cursors are rolled back so the records retry on the next
// append.
func (a *Appender) appendInternRecords() error {
	if a.intern.flushedFrames == len(a.intern.frames) &&
		a.intern.flushedStacks == len(a.intern.stacks) {
		return nil
	}
	path := filepath.Join(a.dir, internFile)
	_, serr := os.Stat(path)
	freshIntern := os.IsNotExist(serr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	ff, fs := a.intern.flushedFrames, a.intern.flushedStacks
	bw := bufio.NewWriter(f)
	if freshIntern {
		bw.WriteString(colfmt.InternMagic) //nolint:errcheck // bufio defers errors to Flush
	}
	err = a.intern.appendRecordsSince(bw)
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		a.intern.flushedFrames, a.intern.flushedStacks = ff, fs
		return fmt.Errorf("trace: appending to %s: %w", internFile, err)
	}
	return nil
}

// appendIndexRecord appends one stream's records to the index, writing
// the version header first when the index is being created.
func (a *Appender) appendIndexRecord(seq int, m StreamMeta) error {
	f, err := os.OpenFile(filepath.Join(a.dir, indexFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if a.fresh {
		fmt.Fprintf(bw, "%s %d\n", indexMagic, a.version)
	}
	if a.version >= 3 {
		err = writeStreamRecord(bw, seq, m)
	} else {
		err = writeStreamRecordV2(bw, m)
	}
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: appending to %s: %w", indexFile, err)
	}
	return nil
}

// writeStreamRecordV2 writes one version-2 stream record (no sequence
// number) — used when appending to a corpus whose index predates v3.
func writeStreamRecordV2(bw *bufio.Writer, m StreamMeta) error {
	if _, err := fmt.Fprintf(bw, "s %q %q %d %d %d\n",
		m.File, m.ID, m.Events, int64(m.Duration), len(m.Instances)); err != nil {
		return err
	}
	for _, in := range m.Instances {
		if _, err := fmt.Fprintf(bw, "i %q %d %d %d\n",
			in.Scenario, in.TID, int64(in.Start), int64(in.End)); err != nil {
			return err
		}
	}
	return nil
}
