package trace

// Verification hooks for internal/tracevet. The verifier must be able
// to open the *valid prefix* of a crash-torn corpus — something the
// strict OpenDir path refuses by design — so the package-private decode
// primitives are exposed here in an allocation-honest form: plain
// funcs over byte slices, no pooling, no directory walking.

// ReadInternFile parses a complete corpus.intern container (header line
// plus records), as written by WriteDir or grown by an Appender.
func ReadInternFile(data []byte) (*InternTable, error) { return readInternTable(data) }

// ReadStreamV4 decodes one TSC4 columnar stream file against the
// corpus-level intern table. Unlike DirSource.Stream it does not pool
// decode buffers and performs no index cross-checks; corruption of any
// kind surfaces as ErrBadFormat.
func ReadStreamV4(data []byte, it *InternTable) (*Stream, error) {
	return readBinaryV4(data, it, &decodeBufs{})
}
