package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tracescope/internal/trace/colfmt"
)

// FuzzReadBinary feeds arbitrary bytes to the binary decoder: it must
// never panic, and anything it accepts must validate.
func FuzzReadBinary(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		var buf bytes.Buffer
		if err := randomStream(seed).WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("TSCP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			if verr := s.Validate(); verr != nil {
				t.Fatalf("accepted invalid stream: %v", verr)
			}
		}
	})
}

// FuzzParseIndex feeds arbitrary text to the corpus.index parser (both
// the v1 and v2 grammars): it must never panic or over-allocate, every
// rejection must be ErrBadFormat, and every accepted index must have
// validated file entries (relative, confined, unique).
func FuzzParseIndex(f *testing.F) {
	var v2 bytes.Buffer
	if err := writeIndex(&v2, []StreamMeta{
		{File: "stream-00000.tscp", ID: "m0", Events: 10, Duration: 500,
			Instances: []Instance{{Scenario: "S1", TID: 3, Start: 0, End: 100}}},
		{File: "stream-00001.tscp", ID: "m1"},
	}, indexVersion); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.String())
	f.Add("stream-00000.tscp\nstream-00001.tscp\n")
	f.Add("TSINDEX 2\n")
	f.Add("TSINDEX 9\n")
	f.Add("TSINDEX 2\ns \"a\" \"b\" 1 1 268435456\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		metas, version, err := parseIndex(data)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("rejection is not ErrBadFormat: %v", err)
			}
			return
		}
		if version < 1 || version > indexVersion {
			t.Fatalf("accepted unknown version %d", version)
		}
		seen := make(map[string]bool)
		for _, m := range metas {
			if err := checkIndexFile(m.File, seen); err != nil {
				t.Fatalf("accepted invalid file entry %q: %v", m.File, err)
			}
		}
	})
}

// FuzzCorpusReadFrom feeds arbitrary bytes to the single-file corpus
// reader: the TSCORPUS header and every embedded stream must either
// parse or fail with ErrBadFormat — never panic or over-allocate.
func FuzzCorpusReadFrom(f *testing.F) {
	var buf bytes.Buffer
	c := NewCorpus(randomStream(1), randomStream(2))
	if _, err := c.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("TSCORPUS 0\n"))
	f.Add([]byte("TSCORPUS 2\nTSCP"))
	f.Add([]byte("TSCORPUS 1000000000000\n"))
	f.Add([]byte("TSCORPUS -1\n"))
	f.Add([]byte("TSCORPUS 1 \n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("rejection is not ErrBadFormat: %v", err)
			}
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted invalid corpus: %v", err)
		}
		if !strings.HasPrefix(string(data), "TSCORPUS ") {
			t.Fatal("accepted corpus without header")
		}
	})
}

// FuzzReadV4Index lays arbitrary intern-table and stream-file bytes
// into a corpus directory under a well-formed v4 index: OpenDir and
// Stream must never panic, and anything they accept must validate. This
// covers the full v4 open path — index, corpus.intern, and the TSC4
// container — against mutually inconsistent inputs (a stream file
// referencing intern records that do not exist, and vice versa).
func FuzzReadV4Index(f *testing.F) {
	// Seed with a genuine corpus, then with torn variants.
	dir := f.TempDir()
	if err := NewCorpus(randomStream(1)).WriteDir(dir); err != nil {
		f.Fatal(err)
	}
	intern, err := os.ReadFile(filepath.Join(dir, internFile))
	if err != nil {
		f.Fatal(err)
	}
	stream, err := os.ReadFile(filepath.Join(dir, "stream-00000.tsc4"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(intern, stream)
	f.Add(intern[:len(intern)/2], stream)
	f.Add(intern, stream[:len(stream)/2])
	f.Add([]byte(nil), stream)
	f.Add([]byte("TSINTERN 1\n"), []byte("TSC4"))
	meta := func() StreamMeta {
		d, err := OpenDir(dir)
		if err != nil {
			f.Fatal(err)
		}
		return d.StreamMeta(0)
	}()
	f.Fuzz(func(t *testing.T, intern, stream []byte) {
		fdir := t.TempDir()
		var index bytes.Buffer
		m := meta
		if err := writeIndex(&index, []StreamMeta{m}, indexVersion); err != nil {
			t.Fatal(err)
		}
		for name, data := range map[string][]byte{
			indexFile:  index.Bytes(),
			internFile: intern,
			m.File:     stream,
		} {
			if err := os.WriteFile(filepath.Join(fdir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		d, err := OpenDir(fdir)
		if err != nil {
			return
		}
		s, err := d.Stream(0)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) && !errors.Is(err, colfmt.ErrCorrupt) {
				t.Fatalf("decode rejection is not ErrBadFormat: %v", err)
			}
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted invalid stream: %v", verr)
		}
	})
}

// FuzzWildcardMatch checks the matcher never panics and honours the
// universal pattern.
func FuzzWildcardMatch(f *testing.F) {
	f.Add("*.sys", "fs.sys")
	f.Add("a*b*c", "abc")
	f.Add("", "")
	f.Add("**", "x")
	f.Fuzz(func(t *testing.T, pattern, module string) {
		filter := NewComponentFilter(pattern)
		filter.MatchModule(module) // must not panic
		if !NewComponentFilter("*").MatchModule(module) {
			t.Fatal("universal pattern rejected a module")
		}
	})
}

// FuzzSlice checks window slicing on random windows of a fixed stream.
func FuzzSlice(f *testing.F) {
	f.Add(int64(0), int64(1000))
	f.Add(int64(500), int64(200000))
	f.Fuzz(func(t *testing.T, from, to int64) {
		s := randomStream(7)
		out, err := s.Slice(Time(from), Time(to))
		if err != nil {
			return
		}
		if verr := out.Validate(); verr != nil {
			t.Fatalf("slice produced invalid stream: %v", verr)
		}
		for _, e := range out.Events {
			if e.Time < 0 || e.End() > Time(to-from) {
				t.Fatalf("event [%d,%d) outside rebased window [0,%d)", e.Time, e.End(), to-from)
			}
		}
	})
}
