package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary feeds arbitrary bytes to the binary decoder: it must
// never panic, and anything it accepts must validate.
func FuzzReadBinary(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		var buf bytes.Buffer
		if err := randomStream(seed).WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("TSCP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			if verr := s.Validate(); verr != nil {
				t.Fatalf("accepted invalid stream: %v", verr)
			}
		}
	})
}

// FuzzWildcardMatch checks the matcher never panics and honours the
// universal pattern.
func FuzzWildcardMatch(f *testing.F) {
	f.Add("*.sys", "fs.sys")
	f.Add("a*b*c", "abc")
	f.Add("", "")
	f.Add("**", "x")
	f.Fuzz(func(t *testing.T, pattern, module string) {
		filter := NewComponentFilter(pattern)
		filter.MatchModule(module) // must not panic
		if !NewComponentFilter("*").MatchModule(module) {
			t.Fatal("universal pattern rejected a module")
		}
	})
}

// FuzzSlice checks window slicing on random windows of a fixed stream.
func FuzzSlice(f *testing.F) {
	f.Add(int64(0), int64(1000))
	f.Add(int64(500), int64(200000))
	f.Fuzz(func(t *testing.T, from, to int64) {
		s := randomStream(7)
		out, err := s.Slice(Time(from), Time(to))
		if err != nil {
			return
		}
		if verr := out.Validate(); verr != nil {
			t.Fatalf("slice produced invalid stream: %v", verr)
		}
		for _, e := range out.Events {
			if e.Time < 0 || e.End() > Time(to-from) {
				t.Fatalf("event [%d,%d) outside rebased window [0,%d)", e.Time, e.End(), to-from)
			}
		}
	})
}
