package trace

import "strings"

// ComponentFilter selects tracing events for chosen components (§3). A
// filter holds module-name patterns; a frame belongs to the filter when its
// module matches any pattern. Patterns support '*' wildcards ("*.sys"
// selects all device drivers) and are matched case-insensitively, matching
// how Windows module names behave.
type ComponentFilter struct {
	patterns []string
}

// NewComponentFilter builds a filter from module-name patterns. An empty
// pattern list yields a filter matching nothing.
func NewComponentFilter(patterns ...string) *ComponentFilter {
	lowered := make([]string, 0, len(patterns))
	for _, p := range patterns {
		p = strings.TrimSpace(strings.ToLower(p))
		if p != "" {
			lowered = append(lowered, p)
		}
	}
	return &ComponentFilter{patterns: lowered}
}

// AllDrivers is the filter the paper's evaluation uses: every module whose
// name matches "*.sys" (§5.1).
func AllDrivers() *ComponentFilter { return NewComponentFilter("*.sys") }

// Patterns returns a copy of the filter's patterns.
func (f *ComponentFilter) Patterns() []string {
	out := make([]string, len(f.patterns))
	copy(out, f.patterns)
	return out
}

// MatchModule reports whether a module name matches any pattern.
func (f *ComponentFilter) MatchModule(module string) bool {
	if f == nil {
		return false
	}
	module = strings.ToLower(module)
	for _, p := range f.patterns {
		if wildcardMatch(p, module) {
			return true
		}
	}
	return false
}

// MatchFrame reports whether a "module!function" frame belongs to the
// filtered components.
func (f *ComponentFilter) MatchFrame(frame string) bool {
	return f.MatchModule(Module(frame))
}

// TopSignature returns the topmost signature related to the chosen
// components on the callstack of the event: the first (innermost-first)
// frame whose module matches the filter (§4.1, Definition 2 preamble). The
// boolean reports whether such a frame exists.
func (f *ComponentFilter) TopSignature(s *Stream, stack StackID) (string, bool) {
	for _, fid := range s.Stack(stack) {
		frame := s.Frame(fid)
		if f.MatchFrame(frame) {
			return frame, true
		}
	}
	return "", false
}

// MatchStack reports whether any frame of the stack belongs to the
// filtered components.
func (f *ComponentFilter) MatchStack(s *Stream, stack StackID) bool {
	_, ok := f.TopSignature(s, stack)
	return ok
}

// wildcardMatch matches s against pattern p where '*' matches any (possibly
// empty) substring. Both inputs must already be lower-cased.
func wildcardMatch(p, s string) bool {
	// Fast paths.
	if p == "*" {
		return true
	}
	if !strings.ContainsRune(p, '*') {
		return p == s
	}
	parts := strings.Split(p, "*")
	// Anchor the first and last literal chunks.
	if first := parts[0]; first != "" {
		if !strings.HasPrefix(s, first) {
			return false
		}
		s = s[len(first):]
	}
	last := parts[len(parts)-1]
	if last != "" {
		if !strings.HasSuffix(s, last) {
			return false
		}
		s = s[:len(s)-len(last)]
	}
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		i := strings.Index(s, mid)
		if i < 0 {
			return false
		}
		s = s[i+len(mid):]
	}
	return true
}

// FilterCache memoises a ComponentFilter's per-stack results. Analyses
// call TopSignature for the same (stream, stack) pair once per instance
// graph; over thousands of instances the cache removes the repeated
// frame-by-frame wildcard matching. Not safe for concurrent use.
type FilterCache struct {
	f *ComponentFilter
	m map[filterCacheKey]filterCacheVal
}

type filterCacheKey struct {
	s   *Stream
	gen uint64 // pooled streams reuse allocations; see Stream.gen
	id  StackID
}

type filterCacheVal struct {
	sig string
	ok  bool
}

// NewFilterCache wraps a filter with memoisation.
func NewFilterCache(f *ComponentFilter) *FilterCache {
	return &FilterCache{f: f, m: make(map[filterCacheKey]filterCacheVal)}
}

// Filter returns the underlying filter.
func (c *FilterCache) Filter() *ComponentFilter { return c.f }

// TopSignature is a memoised ComponentFilter.TopSignature.
func (c *FilterCache) TopSignature(s *Stream, stack StackID) (string, bool) {
	key := filterCacheKey{s: s, gen: s.gen, id: stack}
	if v, ok := c.m[key]; ok {
		return v.sig, v.ok
	}
	sig, ok := c.f.TopSignature(s, stack)
	c.m[key] = filterCacheVal{sig: sig, ok: ok}
	return sig, ok
}

// MatchStack is a memoised ComponentFilter.MatchStack.
func (c *FilterCache) MatchStack(s *Stream, stack StackID) bool {
	_, ok := c.TopSignature(s, stack)
	return ok
}
