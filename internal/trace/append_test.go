package trace

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestAppenderRoundTrip grows a fresh corpus one stream at a time and
// checks that OpenDir sees exactly what was appended.
func TestAppenderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAppender(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []*Stream{randomStream(1), randomStream(2), randomStream(3)}
	for i, s := range want {
		idx, err := a.Append(s)
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("Append returned index %d, want %d", idx, i)
		}
	}
	if a.NumStreams() != len(want) {
		t.Fatalf("NumStreams = %d, want %d", a.NumStreams(), len(want))
	}

	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumStreams() != len(want) {
		t.Fatalf("OpenDir sees %d streams, want %d", d.NumStreams(), len(want))
	}
	for i, w := range want {
		got, err := d.Stream(i)
		if err != nil {
			t.Fatal(err)
		}
		if !streamsEqual(got, w) {
			t.Fatalf("stream %d round-trip mismatch", i)
		}
		m := d.StreamMeta(i)
		if m.ID != w.ID || m.Events != len(w.Events) || !reflect.DeepEqual(m.Instances, w.Instances) {
			t.Fatalf("stream %d metadata mismatch: %+v", i, m)
		}
	}
}

// TestAppenderContinuesExistingCorpus reopens a corpus written by
// WriteDir and appends to it; numbering continues from the batch part.
func TestAppenderContinuesExistingCorpus(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(randomStream(1), randomStream(2))
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	a, err := OpenAppender(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStreams() != 2 {
		t.Fatalf("NumStreams = %d, want 2", a.NumStreams())
	}
	idx, err := a.Append(randomStream(3))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("Append returned index %d, want 2", idx)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumStreams() != 3 {
		t.Fatalf("OpenDir sees %d streams, want 3", d.NumStreams())
	}
	if _, err := d.Stream(2); err != nil {
		t.Fatal(err)
	}
}

// TestAppenderRejectsInvalidStream checks that a stream failing
// validation is not written at all.
func TestAppenderRejectsInvalidStream(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAppender(dir)
	if err != nil {
		t.Fatal(err)
	}
	bad := NewStream("bad")
	bad.Instances = append(bad.Instances, Instance{Scenario: "", TID: 0, Start: 0, End: 1})
	if _, err := a.Append(bad); err == nil {
		t.Fatal("Append accepted an invalid stream")
	}
	if a.NumStreams() != 0 {
		t.Fatalf("NumStreams = %d after rejected append, want 0", a.NumStreams())
	}
	if _, err := os.Stat(filepath.Join(dir, indexFile)); !os.IsNotExist(err) {
		t.Fatalf("rejected append created an index: %v", err)
	}
}

// TestAppenderRejectsV1 checks legacy plain-filename indexes are not
// appendable.
func TestAppenderRejectsV1(t *testing.T) {
	dir := t.TempDir()
	var buf strings.Builder
	if err := randomStream(1).WriteBinary(nopWriteCloser{&buf}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stream-00000.tscp"), []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFile), []byte("stream-00000.tscp\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenAppender(dir)
	if err == nil || !strings.Contains(err.Error(), "version >= 2") {
		t.Fatalf("OpenAppender on a v1 corpus: err = %v, want version >= 2 rejection", err)
	}
}

type nopWriteCloser struct{ w *strings.Builder }

func (n nopWriteCloser) Write(p []byte) (int, error) { return n.w.Write(p) }

// TestAppenderKeepsV2Format checks that appending to a version-2 corpus
// writes version-2 records (no sequence numbers), so the index stays
// self-consistent.
func TestAppenderKeepsV2Format(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(randomStream(1))
	if err := c.WriteDirVersion(dir, 2); err != nil {
		t.Fatal(err)
	}

	b, err := OpenAppender(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(randomStream(2)); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumStreams() != 2 {
		t.Fatalf("OpenDir sees %d streams, want 2", d.NumStreams())
	}
}

// TestDirSourceReload checks incremental discovery: a source opened over
// a growing corpus picks up appended streams without disturbing the
// metadata (or stream indices) of streams it already knows.
func TestDirSourceReload(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAppender(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append(randomStream(1)); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantInstances := d.NumInstances()
	wantEvents := d.NumEvents()
	wantDur := d.TotalDuration()

	n, err := d.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Reload with nothing new discovered %d streams", n)
	}

	s2, s3 := randomStream(2), randomStream(3)
	if _, err := a.Append(s2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append(s3); err != nil {
		t.Fatal(err)
	}
	n, err = d.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Reload discovered %d streams, want 2", n)
	}
	if d.NumStreams() != 3 {
		t.Fatalf("NumStreams = %d after reload, want 3", d.NumStreams())
	}
	if got := d.NumInstances(); got != wantInstances+len(s2.Instances)+len(s3.Instances) {
		t.Fatalf("NumInstances = %d after reload", got)
	}
	if got := d.NumEvents(); got != wantEvents+len(s2.Events)+len(s3.Events) {
		t.Fatalf("NumEvents = %d after reload", got)
	}
	if got := d.TotalDuration(); got != wantDur+s2.Duration()+s3.Duration() {
		t.Fatalf("TotalDuration = %d after reload", got)
	}
	got, err := d.Stream(2)
	if err != nil {
		t.Fatal(err)
	}
	if !streamsEqual(got, s3) {
		t.Fatal("reloaded stream 2 does not match appended stream")
	}
}

// TestDirSourceReloadRejectsRewrite checks the append-only contract: a
// reload over an index whose existing records changed (or shrank) fails
// with ErrBadFormat instead of silently renumbering streams.
func TestDirSourceReloadRejectsRewrite(t *testing.T) {
	newCorpusDir := func(t *testing.T) (*DirSource, string) {
		t.Helper()
		dir := t.TempDir()
		a, err := OpenAppender(dir)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 2; seed++ {
			if _, err := a.Append(randomStream(seed)); err != nil {
				t.Fatal(err)
			}
		}
		d, err := OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		return d, filepath.Join(dir, indexFile)
	}

	t.Run("shrink", func(t *testing.T) {
		d, index := newCorpusDir(t)
		data, err := os.ReadFile(index)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(string(data), "\n")
		truncated := strings.Join(lines[:len(lines)/2], "")
		if err := os.WriteFile(index, []byte(truncated), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Reload(); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("Reload over a shrunk index: err = %v, want ErrBadFormat", err)
		}
	})

	t.Run("rewrite", func(t *testing.T) {
		d, index := newCorpusDir(t)
		data, err := os.ReadFile(index)
		if err != nil {
			t.Fatal(err)
		}
		rewritten := strings.Replace(string(data), `"rnd"`, `"other"`, 1)
		if rewritten == string(data) {
			t.Fatal("test setup: stream ID not found in index")
		}
		if err := os.WriteFile(index, []byte(rewritten), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Reload(); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("Reload over a rewritten index: err = %v, want ErrBadFormat", err)
		}
	})
}

// TestParseIndexUnsupportedVersion checks that a future index version
// produces an actionable error naming both the found and the supported
// versions, not a bare mismatch.
func TestParseIndexUnsupportedVersion(t *testing.T) {
	_, _, err := parseIndex("TSINDEX 5\n")
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
	for _, want := range []string{"found index version 5", "supports versions 1 through 4", "upgrade"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestParseIndexSequenceMismatch checks v3 sequence validation: records
// out of order (a truncated-then-regrown or hand-edited index) are
// rejected.
func TestParseIndexSequenceMismatch(t *testing.T) {
	const idx = "TSINDEX 3\n" +
		"s 1 \"stream-00000.tscp\" \"m0\" 0 0 0\n"
	_, _, err := parseIndex(idx)
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
	if !strings.Contains(err.Error(), "sequence number 1 at position 0") {
		t.Fatalf("error %q does not name the bad sequence number", err)
	}
}
