// Package trace defines the execution-trace schema used throughout
// tracescope: the four-event trace stream of Yu et al. (ASPLOS 2014, §2.1),
// callstacks with frame/stack interning, scenario-instance records, and a
// container for corpora of streams.
//
// A trace stream is a time-ordered sequence of events. Each event is one of:
//
//   - Running: a CPU-usage sample taken at a constant interval (1 ms in ETW
//     and DTrace), attributed to the sampled thread's current callstack.
//   - Wait: the thread entered the waiting state (blocking lock acquire,
//     I/O wait, ...). Cost holds the full wait duration, restored from the
//     matching unwait.
//   - Unwait: a running thread signalled a waiting thread (lock release,
//     I/O completion). WTID names the woken thread.
//   - HardwareService: a hardware operation with start timestamp and
//     duration, attributed to a device pseudo-thread.
//
// Streams intern callstacks: frames ("module!function" strings) live in a
// per-stream frame table and stacks in a stack table; events carry 32-bit
// stack IDs. This mirrors how ETW persists stacks and keeps corpora compact.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Time is a timestamp in microseconds from the start of the stream.
type Time int64

// Duration is a time span in microseconds.
type Duration int64

// Milliseconds converts d to floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1000.0 }

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e6 }

// String renders the duration in a human-friendly unit.
func (d Duration) String() string {
	switch {
	case d >= 1e6:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= 1000:
		return fmt.Sprintf("%.2fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%dus", int64(d))
	}
}

// Millisecond is one millisecond expressed as a Duration.
const Millisecond Duration = 1000

// Second is one second expressed as a Duration.
const Second Duration = 1e6

// EventType discriminates the four trace-event kinds of the schema.
type EventType uint8

// The four event types of the trace-stream schema (§2.1).
const (
	Running EventType = iota
	Wait
	Unwait
	HardwareService
	numEventTypes
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case Running:
		return "running"
	case Wait:
		return "wait"
	case Unwait:
		return "unwait"
	case HardwareService:
		return "hwservice"
	default:
		return fmt.Sprintf("EventType(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the defined event types.
func (t EventType) Valid() bool { return t < numEventTypes }

// ThreadID identifies a thread within a stream. Device pseudo-threads use
// IDs allocated from the same space. NoThread marks an absent thread field.
type ThreadID int32

// NoThread is the zero-information value for thread fields that do not
// apply to an event (for example WTID on a running event).
const NoThread ThreadID = -1

// StackID indexes a stream's stack table. NoStack marks an absent stack.
type StackID int32

// NoStack marks an event with no recorded callstack.
const NoStack StackID = -1

// FrameID indexes a stream's frame table.
type FrameID int32

// Event is a single tracing event. Fields follow the paper's schema:
// callstack e.S (Stack), timestamp e.T (Time), cost e.C (Cost), thread
// e.TID, and unwaited thread e.WTID.
type Event struct {
	Type  EventType
	Time  Time
	Cost  Duration
	TID   ThreadID
	WTID  ThreadID
	Stack StackID
}

// End returns the completion time of the event (Time + Cost).
func (e Event) End() Time { return e.Time + Time(e.Cost) }

// EventID identifies an event globally within a corpus, for distinct-wait
// deduplication across scenario instances (Dwaitdist, §3.2).
type EventID struct {
	Stream int // index of the stream within its corpus
	Index  int // index of the event within the stream
}

// ThreadInfo carries descriptive metadata for a thread, used when rendering
// thread-level snapshots (Figure 1 style).
type ThreadInfo struct {
	Process string
	Name    string
}

// String renders the conventional "Process!Name" form.
func (ti ThreadInfo) String() string {
	if ti.Process == "" && ti.Name == "" {
		return "?"
	}
	return ti.Process + "!" + ti.Name
}

// Instance is a scenario-instance record: the execution of scenario
// Scenario initiated by thread TID between Start and End within its stream
// (the tuple ⟨TS, S, TID, t0, t1⟩ of §2.1).
type Instance struct {
	Scenario string
	TID      ThreadID
	Start    Time
	End      Time
}

// Duration returns the recorded execution time of the instance.
func (in Instance) Duration() Duration { return Duration(in.End - in.Start) }

// Stream is a single trace stream: an event sequence plus the interned
// frame and stack tables and the scenario instances recorded during the
// tracing period.
type Stream struct {
	// ID names the stream (for example the originating machine).
	ID string

	frames     []string
	frameIndex map[string]FrameID
	stacks     [][]FrameID
	stackIndex map[string]StackID

	// Events is the time-ordered event sequence.
	Events []Event
	// Instances lists the scenario instances captured in this stream.
	Instances []Instance
	// Threads maps thread IDs to descriptive metadata. Optional.
	Threads map[ThreadID]ThreadInfo

	// bufs is non-nil for streams decoded from a pooled v4 source: the
	// buffer set backing every slice above, recoverable via
	// StreamPool.Recycle once no references to the stream remain.
	bufs *decodeBufs

	// gen distinguishes successive streams decoded into the same pooled
	// buffer set: recycling reuses the Stream allocation, so caches keyed
	// by stream identity must key on (pointer, generation), not the
	// pointer alone (FilterCache does). Always zero for non-pooled
	// streams.
	gen uint64
}

// NewStream returns an empty stream with the given ID.
func NewStream(id string) *Stream {
	return &Stream{
		ID:         id,
		frameIndex: make(map[string]FrameID),
		stackIndex: make(map[string]StackID),
		Threads:    make(map[ThreadID]ThreadInfo),
	}
}

// InternFrame returns the FrameID for the frame string "module!function",
// adding it to the frame table if new.
func (s *Stream) InternFrame(frame string) FrameID {
	if s.frameIndex == nil {
		// Streams decoded from the zero-alloc v4 path carry populated
		// tables but no index maps; rebuild before the first new intern so
		// existing IDs stay stable.
		s.frameIndex = make(map[string]FrameID, len(s.frames))
		for i, f := range s.frames {
			s.frameIndex[f] = FrameID(i)
		}
	}
	if id, ok := s.frameIndex[frame]; ok {
		return id
	}
	id := FrameID(len(s.frames))
	s.frames = append(s.frames, frame)
	s.frameIndex[frame] = id
	return id
}

// InternStack returns the StackID for the given frames (index 0 is the
// topmost / innermost frame), adding the stack to the table if new. The
// input slice is copied; callers may reuse it.
func (s *Stream) InternStack(frames []FrameID) StackID {
	if len(frames) == 0 {
		return NoStack
	}
	if s.stackIndex == nil {
		// See InternFrame: rebuild the index for v4-decoded streams.
		s.stackIndex = make(map[string]StackID, len(s.stacks))
		for i, st := range s.stacks {
			s.stackIndex[stackKey(st)] = StackID(i)
		}
	}
	key := stackKey(frames)
	if id, ok := s.stackIndex[key]; ok {
		return id
	}
	id := StackID(len(s.stacks))
	cp := make([]FrameID, len(frames))
	copy(cp, frames)
	s.stacks = append(s.stacks, cp)
	s.stackIndex[key] = id
	return id
}

// InternStackStrings interns a stack given as frame strings, topmost first.
func (s *Stream) InternStackStrings(frames ...string) StackID {
	ids := make([]FrameID, len(frames))
	for i, f := range frames {
		ids[i] = s.InternFrame(f)
	}
	return s.InternStack(ids)
}

func stackKey(frames []FrameID) string {
	var b strings.Builder
	for i, f := range frames {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", f)
	}
	return b.String()
}

// Frame returns the frame string for id, or "" if out of range.
func (s *Stream) Frame(id FrameID) string {
	if id < 0 || int(id) >= len(s.frames) {
		return ""
	}
	return s.frames[id]
}

// NumFrames returns the size of the frame table.
func (s *Stream) NumFrames() int { return len(s.frames) }

// NumStacks returns the size of the stack table.
func (s *Stream) NumStacks() int { return len(s.stacks) }

// Stack returns the frame IDs of stack id, topmost first. The returned
// slice is owned by the stream and must not be modified.
func (s *Stream) Stack(id StackID) []FrameID {
	if id < 0 || int(id) >= len(s.stacks) {
		return nil
	}
	return s.stacks[id]
}

// StackStrings resolves stack id into frame strings, topmost first.
func (s *Stream) StackStrings(id StackID) []string {
	ids := s.Stack(id)
	out := make([]string, len(ids))
	for i, f := range ids {
		out[i] = s.Frame(f)
	}
	return out
}

// AppendEvent appends an event to the stream.
func (s *Stream) AppendEvent(e Event) {
	s.Events = append(s.Events, e)
}

// SetThread records descriptive metadata for a thread.
func (s *Stream) SetThread(tid ThreadID, process, name string) {
	if s.Threads == nil {
		s.Threads = make(map[ThreadID]ThreadInfo)
	}
	s.Threads[tid] = ThreadInfo{Process: process, Name: name}
}

// ThreadName returns the "Process!Name" form for tid, or "T<tid>" when no
// metadata was recorded.
func (s *Stream) ThreadName(tid ThreadID) string {
	if ti, ok := s.Threads[tid]; ok {
		return ti.String()
	}
	return fmt.Sprintf("T%d", tid)
}

// Duration returns the time span covered by the stream's events.
func (s *Stream) Duration() Duration {
	var max Time
	for _, e := range s.Events {
		if end := e.End(); end > max {
			max = end
		}
	}
	return Duration(max)
}

// SortEvents orders events by (Time, TID, Type). Generators that emit events
// out of order must call this before handing the stream to analyses.
func (s *Stream) SortEvents() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		a, b := s.Events[i], s.Events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Type < b.Type
	})
}

// Validate checks internal consistency: event types are defined, stack and
// frame references are in range, costs are non-negative, unwait events name
// a target thread, and instances have non-negative spans. It returns the
// first problem found.
func (s *Stream) Validate() error {
	for i, e := range s.Events {
		if !e.Type.Valid() {
			return fmt.Errorf("trace: stream %q event %d: invalid type %d", s.ID, i, e.Type)
		}
		if e.Cost < 0 {
			return fmt.Errorf("trace: stream %q event %d: negative cost %d", s.ID, i, e.Cost)
		}
		if e.Time < 0 {
			return fmt.Errorf("trace: stream %q event %d: negative time %d", s.ID, i, e.Time)
		}
		if e.Stack != NoStack && (e.Stack < 0 || int(e.Stack) >= len(s.stacks)) {
			return fmt.Errorf("trace: stream %q event %d: stack %d out of range", s.ID, i, e.Stack)
		}
		if e.Type == Unwait && e.WTID == NoThread {
			return fmt.Errorf("trace: stream %q event %d: unwait without WTID", s.ID, i)
		}
	}
	for i, st := range s.stacks {
		if len(st) == 0 {
			return fmt.Errorf("trace: stream %q stack %d: empty", s.ID, i)
		}
		for _, f := range st {
			if f < 0 || int(f) >= len(s.frames) {
				return fmt.Errorf("trace: stream %q stack %d: frame %d out of range", s.ID, i, f)
			}
		}
	}
	for i, in := range s.Instances {
		if in.End < in.Start {
			return fmt.Errorf("trace: stream %q instance %d: end %d before start %d", s.ID, i, in.End, in.Start)
		}
		if in.Scenario == "" {
			return fmt.Errorf("trace: stream %q instance %d: empty scenario name", s.ID, i)
		}
	}
	return nil
}

// Module returns the module part of a "module!function" frame string, or
// the whole string when it has no separator.
func Module(frame string) string {
	if i := strings.IndexByte(frame, '!'); i >= 0 {
		return frame[:i]
	}
	return frame
}

// Function returns the function part of a "module!function" frame string,
// or "" when it has no separator.
func Function(frame string) string {
	if i := strings.IndexByte(frame, '!'); i >= 0 {
		return frame[i+1:]
	}
	return ""
}

// FrameString builds a "module!function" frame string.
func FrameString(module, function string) string { return module + "!" + function }
