package trace

import (
	"container/list"
	"sync"

	"tracescope/internal/obs"
)

// SourceCacheStats reports a CachedSource's effectiveness and its
// decoded-stream memory high-water mark.
type SourceCacheStats struct {
	// Hits counts fetches served without decoding — including waits on a
	// decode already in flight on another goroutine.
	Hits int64
	// Misses counts fetches that decoded the stream.
	Misses int64
	// Evictions counts streams dropped to stay within the limit.
	Evictions int64
	// Size is the current number of cached decoded streams.
	Size int
	// HighWater is the maximum number of decoded streams the cache held
	// at once (cached entries plus in-flight decodes) — the peak-memory
	// proxy: it never exceeds limit + concurrent fetchers.
	HighWater int
}

// CachedSource wraps a Source with a bounded LRU of decoded streams. It
// is safe for concurrent use by shard workers: lookups and bookkeeping
// are mutex-guarded, and concurrent fetches of the same stream share one
// decode. With limit n and w concurrent fetchers, at most n + w decoded
// streams are held at any moment (eviction hooks let dependents — e.g.
// per-stream Wait-Graph builders — release their references in step).
type CachedSource struct {
	src Source
	rec obs.Recorder

	mu      sync.Mutex
	limit   int
	lru     *list.List // of int (stream index); front = most recent
	entries map[int]*list.Element
	streams map[int]*Stream
	pending map[int]*pendingFetch
	stats   SourceCacheStats
	hooks   []func(stream int)

	// Recycling state (EnableRecycling): pins count consumers currently
	// using a stream index; zombies hold evicted streams that were pinned
	// at eviction and may only be recycled once their last pin drops.
	recycler     recycler
	pins         map[int]int
	zombies      map[int][]*Stream
	releaseHooks []func(stream int)
}

// recycler is the capability a wrapped source needs for EnableRecycling
// (DirSource implements it over its v4 decode-buffer pool).
type recycler interface{ Recycle(*Stream) }

type pendingFetch struct {
	done chan struct{}
	s    *Stream
	err  error
}

// NewCachedSource wraps src with an LRU of at most limit decoded
// streams. limit <= 0 means unbounded.
func NewCachedSource(src Source, limit int) *CachedSource {
	return &CachedSource{
		src:     src,
		rec:     obs.Nop,
		limit:   limit,
		lru:     list.New(),
		entries: make(map[int]*list.Element),
		streams: make(map[int]*Stream),
		pending: make(map[int]*pendingFetch),
	}
}

// Unwrap returns the wrapped source.
func (c *CachedSource) Unwrap() Source { return c.src }

// SetRecorder routes the cache's hit/miss/eviction counters to r and
// forwards the recorder to the wrapped source when it is instrumentable
// (a *DirSource records per-stream decode spans), so one registry holds
// the whole out-of-core story. Call before concurrent use; nil restores
// the no-op recorder.
func (c *CachedSource) SetRecorder(r obs.Recorder) {
	c.mu.Lock()
	c.rec = obs.OrNop(r)
	c.mu.Unlock()
	if rs, ok := c.src.(interface{ SetRecorder(obs.Recorder) }); ok {
		rs.SetRecorder(r)
	}
}

// NumStreams returns the number of streams.
func (c *CachedSource) NumStreams() int { return c.src.NumStreams() }

// NumInstances returns the total number of scenario instances recorded.
func (c *CachedSource) NumInstances() int { return c.src.NumInstances() }

// NumEvents returns the total number of events across all streams.
func (c *CachedSource) NumEvents() int { return c.src.NumEvents() }

// TotalDuration sums the time spans of all streams.
func (c *CachedSource) TotalDuration() Duration { return c.src.TotalDuration() }

// Scenarios returns the sorted scenario names with instance counts.
func (c *CachedSource) Scenarios() []ScenarioCount { return c.src.Scenarios() }

// InstancesOf returns references to every instance of the named
// scenario ("" selects all).
func (c *CachedSource) InstancesOf(scenario string) []InstanceRef {
	return c.src.InstancesOf(scenario)
}

// InstanceMeta resolves a reference without decoding.
func (c *CachedSource) InstanceMeta(ref InstanceRef) Instance { return c.src.InstanceMeta(ref) }

// StreamMeta returns stream i's metadata without decoding.
func (c *CachedSource) StreamMeta(i int) StreamMeta { return c.src.StreamMeta(i) }

// Stream returns stream i, serving repeats from the LRU. A miss decodes
// via the wrapped source; concurrent fetches of the same stream share
// one decode.
func (c *CachedSource) Stream(i int) (*Stream, error) {
	c.mu.Lock()
	rec := c.rec
	if el, ok := c.entries[i]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		s := c.streams[i]
		c.mu.Unlock()
		rec.Add("source_cache_hits_total", 1)
		return s, nil
	}
	if p, ok := c.pending[i]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		rec.Add("source_cache_hits_total", 1)
		<-p.done
		return p.s, p.err
	}
	p := &pendingFetch{done: make(chan struct{})}
	c.pending[i] = p
	c.stats.Misses++
	c.noteHeldLocked()
	c.mu.Unlock()
	rec.Add("source_cache_misses_total", 1)

	p.s, p.err = c.src.Stream(i)

	c.mu.Lock()
	delete(c.pending, i)
	var evicted []evictedStream
	if p.err == nil {
		c.entries[i] = c.lru.PushFront(i)
		c.streams[i] = p.s
		evicted = c.evictOverLimitLocked()
		c.noteHeldLocked()
	}
	c.mu.Unlock()
	close(p.done)
	if len(evicted) > 0 {
		rec.Add("source_cache_evictions_total", int64(len(evicted)))
	}
	c.notifyEvicted(evicted)
	return p.s, p.err
}

// Pin marks stream i in use: until the matching Unpin, an eviction of i
// will not recycle the decoded stream's buffers. Consumers on a
// recycling source must pin before fetching (Pin → Stream → use →
// Unpin); pins nest. Without EnableRecycling pins are bookkeeping only.
func (c *CachedSource) Pin(i int) {
	c.mu.Lock()
	if c.pins == nil {
		c.pins = make(map[int]int)
	}
	c.pins[i]++
	c.mu.Unlock()
}

// Unpin drops a pin. When the last pin of an already evicted stream
// drops, its release hooks run and its buffers are recycled.
func (c *CachedSource) Unpin(i int) {
	c.mu.Lock()
	n, ok := c.pins[i]
	if !ok {
		c.mu.Unlock()
		panic("trace: CachedSource.Unpin without matching Pin")
	}
	if n > 1 {
		c.pins[i] = n - 1
		c.mu.Unlock()
		return
	}
	delete(c.pins, i)
	var dead []*Stream
	if len(c.zombies) > 0 {
		dead = c.zombies[i]
		delete(c.zombies, i)
	}
	r := c.recycler
	c.mu.Unlock()
	if len(dead) > 0 {
		c.release(r, i, dead)
	}
}

// EnableRecycling arms buffer recycling: once on, a stream evicted with
// no pins outstanding (or whose last pin drops after eviction) is
// returned to the wrapped source via Recycle, after the release hooks
// run. It reports whether the wrapped source supports recycling; call
// before concurrent use. Turning it on obliges every consumer that can
// run concurrently with evictions to follow the pin protocol.
func (c *CachedSource) EnableRecycling() bool {
	r, ok := c.src.(recycler)
	if !ok {
		return false
	}
	c.mu.Lock()
	c.recycler = r
	if c.pins == nil {
		c.pins = make(map[int]int)
	}
	if c.zombies == nil {
		c.zombies = make(map[int][]*Stream)
	}
	c.mu.Unlock()
	return true
}

// RecyclingEnabled reports whether EnableRecycling has armed buffer
// recycling on this cache.
func (c *CachedSource) RecyclingEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recycler != nil
}

// AddReleaseHook registers fn to run when a stream index is fully
// released — evicted and unpinned — immediately before its buffers are
// recycled. Dependents with per-stream freelists (impact's wait-graph
// builder pool) reclaim their state here. Hooks run outside the cache
// lock and must be registered before concurrent use; they only fire
// when recycling is enabled.
func (c *CachedSource) AddReleaseHook(fn func(stream int)) {
	c.mu.Lock()
	c.releaseHooks = append(c.releaseHooks, fn)
	c.mu.Unlock()
}

// release runs the release hooks for stream i and recycles its dead
// decoded streams. Called outside the cache lock.
func (c *CachedSource) release(r recycler, i int, dead []*Stream) {
	c.mu.Lock()
	hooks := c.releaseHooks
	c.mu.Unlock()
	for _, fn := range hooks {
		fn(i)
	}
	if r != nil {
		for _, s := range dead {
			r.Recycle(s)
		}
	}
}

// Limit returns the current cache limit (<= 0 means unbounded).
func (c *CachedSource) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}

// SetLimit rebounds the cache (<= 0 means unbounded), evicting
// least-recently-used streams if it already exceeds the new limit.
func (c *CachedSource) SetLimit(n int) {
	c.mu.Lock()
	c.limit = n
	rec := c.rec
	evicted := c.evictOverLimitLocked()
	c.mu.Unlock()
	if len(evicted) > 0 {
		rec.Add("source_cache_evictions_total", int64(len(evicted)))
	}
	c.notifyEvicted(evicted)
}

// Stats returns a snapshot of the cache counters.
func (c *CachedSource) Stats() SourceCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = len(c.streams)
	return s
}

// AddEvictionHook registers fn to run whenever a stream leaves the
// cache, so dependents holding per-stream state (Wait-Graph builders)
// can release it and keep total decoded-stream memory bounded. Hooks run
// outside the cache lock and must be registered before concurrent use.
func (c *CachedSource) AddEvictionHook(fn func(stream int)) {
	c.mu.Lock()
	c.hooks = append(c.hooks, fn)
	c.mu.Unlock()
}

// evictedStream pairs an evicted index with the decoded stream it held,
// so the recycling path can reclaim the buffers after the hooks run.
type evictedStream struct {
	idx int
	s   *Stream
}

// evictOverLimitLocked drops least-recently-used entries until the cache
// fits the limit, returning the dropped streams.
func (c *CachedSource) evictOverLimitLocked() []evictedStream {
	if c.limit <= 0 {
		return nil
	}
	var evicted []evictedStream
	for len(c.streams) > c.limit {
		el := c.lru.Back()
		if el == nil {
			break
		}
		i := c.lru.Remove(el).(int)
		delete(c.entries, i)
		s := c.streams[i]
		delete(c.streams, i)
		c.stats.Evictions++
		evicted = append(evicted, evictedStream{idx: i, s: s})
	}
	return evicted
}

// noteHeldLocked updates the decoded-stream high-water mark.
func (c *CachedSource) noteHeldLocked() {
	if held := len(c.streams) + len(c.pending); held > c.stats.HighWater {
		c.stats.HighWater = held
	}
}

// notifyEvicted runs the eviction hooks for each dropped stream, then
// routes unpinned streams to recycling; streams still pinned park on
// the zombie list until their last Unpin. Eviction hooks always run
// before release hooks and recycling, so dependents drop their
// per-stream state (builders, cached graphs) before any buffer reuse.
func (c *CachedSource) notifyEvicted(evicted []evictedStream) {
	if len(evicted) == 0 {
		return
	}
	c.mu.Lock()
	hooks := c.hooks
	c.mu.Unlock()
	for _, ev := range evicted {
		for _, fn := range hooks {
			fn(ev.idx)
		}
	}
	c.mu.Lock()
	r := c.recycler
	var free []evictedStream
	if r != nil {
		for _, ev := range evicted {
			if c.pins[ev.idx] > 0 {
				c.zombies[ev.idx] = append(c.zombies[ev.idx], ev.s)
			} else {
				free = append(free, ev)
			}
		}
	}
	c.mu.Unlock()
	for _, ev := range free {
		c.release(r, ev.idx, []*Stream{ev.s})
	}
}
