package trace

import (
	"container/list"
	"sync"

	"tracescope/internal/obs"
)

// SourceCacheStats reports a CachedSource's effectiveness and its
// decoded-stream memory high-water mark.
type SourceCacheStats struct {
	// Hits counts fetches served without decoding — including waits on a
	// decode already in flight on another goroutine.
	Hits int64
	// Misses counts fetches that decoded the stream.
	Misses int64
	// Evictions counts streams dropped to stay within the limit.
	Evictions int64
	// Size is the current number of cached decoded streams.
	Size int
	// HighWater is the maximum number of decoded streams the cache held
	// at once (cached entries plus in-flight decodes) — the peak-memory
	// proxy: it never exceeds limit + concurrent fetchers.
	HighWater int
}

// CachedSource wraps a Source with a bounded LRU of decoded streams. It
// is safe for concurrent use by shard workers: lookups and bookkeeping
// are mutex-guarded, and concurrent fetches of the same stream share one
// decode. With limit n and w concurrent fetchers, at most n + w decoded
// streams are held at any moment (eviction hooks let dependents — e.g.
// per-stream Wait-Graph builders — release their references in step).
type CachedSource struct {
	src Source
	rec obs.Recorder

	mu      sync.Mutex
	limit   int
	lru     *list.List // of int (stream index); front = most recent
	entries map[int]*list.Element
	streams map[int]*Stream
	pending map[int]*pendingFetch
	stats   SourceCacheStats
	hooks   []func(stream int)
}

type pendingFetch struct {
	done chan struct{}
	s    *Stream
	err  error
}

// NewCachedSource wraps src with an LRU of at most limit decoded
// streams. limit <= 0 means unbounded.
func NewCachedSource(src Source, limit int) *CachedSource {
	return &CachedSource{
		src:     src,
		rec:     obs.Nop,
		limit:   limit,
		lru:     list.New(),
		entries: make(map[int]*list.Element),
		streams: make(map[int]*Stream),
		pending: make(map[int]*pendingFetch),
	}
}

// Unwrap returns the wrapped source.
func (c *CachedSource) Unwrap() Source { return c.src }

// SetRecorder routes the cache's hit/miss/eviction counters to r and
// forwards the recorder to the wrapped source when it is instrumentable
// (a *DirSource records per-stream decode spans), so one registry holds
// the whole out-of-core story. Call before concurrent use; nil restores
// the no-op recorder.
func (c *CachedSource) SetRecorder(r obs.Recorder) {
	c.mu.Lock()
	c.rec = obs.OrNop(r)
	c.mu.Unlock()
	if rs, ok := c.src.(interface{ SetRecorder(obs.Recorder) }); ok {
		rs.SetRecorder(r)
	}
}

// NumStreams returns the number of streams.
func (c *CachedSource) NumStreams() int { return c.src.NumStreams() }

// NumInstances returns the total number of scenario instances recorded.
func (c *CachedSource) NumInstances() int { return c.src.NumInstances() }

// NumEvents returns the total number of events across all streams.
func (c *CachedSource) NumEvents() int { return c.src.NumEvents() }

// TotalDuration sums the time spans of all streams.
func (c *CachedSource) TotalDuration() Duration { return c.src.TotalDuration() }

// Scenarios returns the sorted scenario names with instance counts.
func (c *CachedSource) Scenarios() []ScenarioCount { return c.src.Scenarios() }

// InstancesOf returns references to every instance of the named
// scenario ("" selects all).
func (c *CachedSource) InstancesOf(scenario string) []InstanceRef {
	return c.src.InstancesOf(scenario)
}

// InstanceMeta resolves a reference without decoding.
func (c *CachedSource) InstanceMeta(ref InstanceRef) Instance { return c.src.InstanceMeta(ref) }

// StreamMeta returns stream i's metadata without decoding.
func (c *CachedSource) StreamMeta(i int) StreamMeta { return c.src.StreamMeta(i) }

// Stream returns stream i, serving repeats from the LRU. A miss decodes
// via the wrapped source; concurrent fetches of the same stream share
// one decode.
func (c *CachedSource) Stream(i int) (*Stream, error) {
	c.mu.Lock()
	rec := c.rec
	if el, ok := c.entries[i]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		s := c.streams[i]
		c.mu.Unlock()
		rec.Add("source_cache_hits_total", 1)
		return s, nil
	}
	if p, ok := c.pending[i]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		rec.Add("source_cache_hits_total", 1)
		<-p.done
		return p.s, p.err
	}
	p := &pendingFetch{done: make(chan struct{})}
	c.pending[i] = p
	c.stats.Misses++
	c.noteHeldLocked()
	c.mu.Unlock()
	rec.Add("source_cache_misses_total", 1)

	p.s, p.err = c.src.Stream(i)

	c.mu.Lock()
	delete(c.pending, i)
	var evicted []int
	if p.err == nil {
		c.entries[i] = c.lru.PushFront(i)
		c.streams[i] = p.s
		evicted = c.evictOverLimitLocked()
		c.noteHeldLocked()
	}
	c.mu.Unlock()
	close(p.done)
	if len(evicted) > 0 {
		rec.Add("source_cache_evictions_total", int64(len(evicted)))
	}
	c.notifyEvicted(evicted)
	return p.s, p.err
}

// Limit returns the current cache limit (<= 0 means unbounded).
func (c *CachedSource) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}

// SetLimit rebounds the cache (<= 0 means unbounded), evicting
// least-recently-used streams if it already exceeds the new limit.
func (c *CachedSource) SetLimit(n int) {
	c.mu.Lock()
	c.limit = n
	rec := c.rec
	evicted := c.evictOverLimitLocked()
	c.mu.Unlock()
	if len(evicted) > 0 {
		rec.Add("source_cache_evictions_total", int64(len(evicted)))
	}
	c.notifyEvicted(evicted)
}

// Stats returns a snapshot of the cache counters.
func (c *CachedSource) Stats() SourceCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = len(c.streams)
	return s
}

// AddEvictionHook registers fn to run whenever a stream leaves the
// cache, so dependents holding per-stream state (Wait-Graph builders)
// can release it and keep total decoded-stream memory bounded. Hooks run
// outside the cache lock and must be registered before concurrent use.
func (c *CachedSource) AddEvictionHook(fn func(stream int)) {
	c.mu.Lock()
	c.hooks = append(c.hooks, fn)
	c.mu.Unlock()
}

// evictOverLimitLocked drops least-recently-used entries until the cache
// fits the limit, returning the dropped stream indexes.
func (c *CachedSource) evictOverLimitLocked() []int {
	if c.limit <= 0 {
		return nil
	}
	var evicted []int
	for len(c.streams) > c.limit {
		el := c.lru.Back()
		if el == nil {
			break
		}
		i := c.lru.Remove(el).(int)
		delete(c.entries, i)
		delete(c.streams, i)
		c.stats.Evictions++
		evicted = append(evicted, i)
	}
	return evicted
}

// noteHeldLocked updates the decoded-stream high-water mark.
func (c *CachedSource) noteHeldLocked() {
	if held := len(c.streams) + len(c.pending); held > c.stats.HighWater {
		c.stats.HighWater = held
	}
}

func (c *CachedSource) notifyEvicted(evicted []int) {
	if len(evicted) == 0 {
		return
	}
	c.mu.Lock()
	hooks := c.hooks
	c.mu.Unlock()
	for _, i := range evicted {
		for _, fn := range hooks {
			fn(i)
		}
	}
}
