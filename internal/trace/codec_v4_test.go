package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tracescope/internal/trace/colfmt"
)

// TestV4RoundTrip checks that a v4 corpus decodes to streams
// indistinguishable from the in-memory originals — same local frame and
// stack ID spaces, events, instances, and threads — with and without
// block compression. Bit-for-bit analysis equivalence across formats
// rests on this.
func TestV4RoundTrip(t *testing.T) {
	streams := []*Stream{randomStream(1), randomStream(2), randomStream(3)}
	c := NewCorpus(streams...)
	for _, tc := range []struct {
		name  string
		write func(dir string) error
	}{
		{"plain", func(dir string) error { return c.WriteDir(dir) }},
		{"compressed", func(dir string) error { return c.WriteDirCompressed(dir) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := tc.write(dir); err != nil {
				t.Fatal(err)
			}
			d, err := OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if d.Version() != indexVersion {
				t.Fatalf("Version = %d, want %d", d.Version(), indexVersion)
			}
			if d.Intern() == nil {
				t.Fatal("v4 corpus has no intern table")
			}
			for i, want := range streams {
				got, err := d.Stream(i)
				if err != nil {
					t.Fatal(err)
				}
				if !streamsEqual(got, want) {
					t.Fatalf("stream %d round-trip mismatch", i)
				}
			}
		})
	}
}

// TestV4DecodeMatchesV3 writes the same corpus in v3 (TSCP streams) and
// v4 (columnar) and checks the decoded streams are equal field for
// field — the format-equivalence contract at the trace layer.
func TestV4DecodeMatchesV3(t *testing.T) {
	c := NewCorpus(randomStream(10), randomStream(11))
	dir3, dir4 := t.TempDir(), t.TempDir()
	if err := c.WriteDirVersion(dir3, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteDir(dir4); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenDir(dir3)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := OpenDir(dir4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d3.NumStreams(); i++ {
		s3, err := d3.Stream(i)
		if err != nil {
			t.Fatal(err)
		}
		s4, err := d4.Stream(i)
		if err != nil {
			t.Fatal(err)
		}
		if !streamsEqual(s3, s4) {
			t.Fatalf("stream %d differs between v3 and v4 decode", i)
		}
	}
}

// TestV4InternSharing checks that streams sharing frames share intern
// table entries: the corpus-level table holds each distinct frame once.
func TestV4InternSharing(t *testing.T) {
	// randomStream draws from the same 5-frame universe for every seed.
	c := NewCorpus(randomStream(1), randomStream(2), randomStream(3), randomStream(4))
	dir := t.TempDir()
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Intern().NumFrames(); n > 5 {
		t.Fatalf("intern table holds %d frames for a 5-frame universe", n)
	}
	sum := 0
	for i := 0; i < c.NumStreams(); i++ {
		sum += c.Streams[i].NumFrames()
	}
	if d.Intern().NumFrames() >= sum && sum > 5 {
		t.Fatalf("intern table (%d frames) shows no cross-stream sharing (per-stream sum %d)", d.Intern().NumFrames(), sum)
	}
}

// TestV4AppendReloadInternTail checks the incremental path: an open
// DirSource picks up appended streams — including brand-new frames and
// stacks that land in the corpus.intern tail — via Reload alone.
func TestV4AppendReloadInternTail(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAppender(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append(randomStream(1)); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	framesBefore := d.Intern().NumFrames()

	// A stream with frames no prior stream interned.
	fresh := NewStream("fresh")
	st := fresh.InternStackStrings("newmod.sys!Entry", "newmod.sys!Worker")
	fresh.AppendEvent(Event{Type: Running, Time: 0, Cost: 10, TID: 0, WTID: NoThread, Stack: st})
	fresh.SetThread(0, "App", "T0")
	fresh.Instances = append(fresh.Instances, Instance{Scenario: "S1", TID: 0, Start: 0, End: 50})
	if err := fresh.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append(fresh); err != nil {
		t.Fatal(err)
	}

	n, err := d.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Reload discovered %d streams, want 1", n)
	}
	if d.Intern().NumFrames() != framesBefore+2 {
		t.Fatalf("intern table has %d frames after reload, want %d", d.Intern().NumFrames(), framesBefore+2)
	}
	got, err := d.Stream(1)
	if err != nil {
		t.Fatal(err)
	}
	if !streamsEqual(got, fresh) {
		t.Fatal("appended stream does not round-trip through the intern tail")
	}
}

// TestV4ReloadRejectsShrunkIntern checks the append-only contract on
// corpus.intern: a truncated file fails Reload with ErrBadFormat.
func TestV4ReloadRejectsShrunkIntern(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAppender(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append(randomStream(1)); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, internFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Reload(); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("Reload over a shrunk intern table: err = %v, want ErrBadFormat", err)
	}
}

// TestStreamPoolRecycle checks the zero-alloc decode loop: recycling a
// decoded stream lets the next decode reuse its buffers, and a double
// Recycle of the same stream is a no-op (the buffers detach on the
// first call).
func TestStreamPoolRecycle(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(randomStream(1), randomStream(2))
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := d.Stream(0)
	if err != nil {
		t.Fatal(err)
	}
	d.Recycle(s0)
	d.Recycle(s0) // must be a no-op, not a double free
	s1, err := d.Stream(1)
	if err != nil {
		t.Fatal(err)
	}
	if !streamsEqual(s1, c.Streams[1]) {
		t.Fatal("stream decoded into recycled buffers mismatches the original")
	}
	st := d.PoolStats()
	if st.Gets != 2 || st.Reuses != 1 || st.Recycles != 1 {
		t.Fatalf("PoolStats = %+v, want Gets 2, Reuses 1, Recycles 1", st)
	}
}

// TestV4DecodedStreamCanIntern checks that a pooled-decode stream still
// supports interning new frames and stacks (index maps rebuild lazily)
// without disturbing existing IDs.
func TestV4DecodedStreamCanIntern(t *testing.T) {
	dir := t.TempDir()
	orig := randomStream(1)
	if err := NewCorpus(orig).WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Stream(0)
	if err != nil {
		t.Fatal(err)
	}
	// Re-interning an existing frame must return its existing ID.
	want := s.Frame(0)
	if got := s.InternFrame(want); got != 0 {
		t.Fatalf("InternFrame(%q) = %d, want 0", want, got)
	}
	// A fresh frame gets the next ID.
	n := s.NumFrames()
	if got := s.InternFrame("brandnew.sys!F"); int(got) != n {
		t.Fatalf("InternFrame(new) = %d, want %d", got, n)
	}
	// Same for stacks.
	existing := s.Stack(0)
	if got := s.InternStack(existing); got != 0 {
		t.Fatalf("InternStack(existing) = %d, want 0", got)
	}
}

// TestCachedSourcePinning checks the recycling protocol end to end:
// eviction hooks fire before release hooks, a pinned stream parks as a
// zombie until its last Unpin, and unpinned evictions recycle
// immediately.
func TestCachedSourcePinning(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(randomStream(1), randomStream(2), randomStream(3))
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCachedSource(d, 1)
	if !cs.EnableRecycling() {
		t.Fatal("EnableRecycling reported unsupported for a v4 DirSource")
	}
	var order []string
	cs.AddEvictionHook(func(i int) { order = append(order, "evict") })
	cs.AddReleaseHook(func(i int) { order = append(order, "release") })

	// Pinned eviction: stream 0 survives as a zombie until Unpin.
	cs.Pin(0)
	if _, err := cs.Stream(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Stream(1); err != nil { // evicts 0, still pinned
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != "evict" {
		t.Fatalf("hook order after pinned eviction = %v, want [evict]", order)
	}
	if got := d.PoolStats().Recycles; got != 0 {
		t.Fatalf("pinned stream recycled early: Recycles = %d", got)
	}
	cs.Unpin(0)
	if len(order) != 2 || order[1] != "release" {
		t.Fatalf("hook order after Unpin = %v, want [evict release]", order)
	}
	if got := d.PoolStats().Recycles; got != 1 {
		t.Fatalf("Recycles = %d after last Unpin, want 1", got)
	}

	// Unpinned eviction: recycled as part of the eviction itself.
	if _, err := cs.Stream(2); err != nil { // evicts 1, no pins
		t.Fatal(err)
	}
	if got := d.PoolStats().Recycles; got != 2 {
		t.Fatalf("Recycles = %d after unpinned eviction, want 2", got)
	}
	if len(order) != 4 || order[2] != "evict" || order[3] != "release" {
		t.Fatalf("hook order after unpinned eviction = %v", order)
	}
}

// TestCachedSourceUnpinWithoutPin checks the misuse guard.
func TestCachedSourceUnpinWithoutPin(t *testing.T) {
	cs := NewCachedSource(NewCorpus(randomStream(1)), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin without Pin did not panic")
		}
	}()
	cs.Unpin(0)
}

// TestV4CorruptInputs mutates a valid v4 stream file in targeted ways;
// every mutation must fail decode with ErrBadFormat, never panic.
func TestV4CorruptInputs(t *testing.T) {
	dir := t.TempDir()
	if err := NewCorpus(randomStream(1)).WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	name := d.StreamMeta(0).File
	valid, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 9; return b }},
		{"truncated half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xFF, 0xFF) }},
		{"frame ref out of range", func(b []byte) []byte {
			// The first frame-table entry follows magic(4) + version(2) +
			// ID string + table length. Blow up the referenced global ID.
			c := &byteCursor{data: b, off: 6}
			if _, err := c.string(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.uvarint(); err != nil { // table length
				t.Fatal(err)
			}
			b[c.off] = 0x7F // global frame 127 in a 5-frame table
			return b
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := d.pool.get()
			defer d.pool.put(b)
			mutated := tc.mutate(append([]byte(nil), valid...))
			if _, err := readBinaryV4(mutated, d.intern, b); !errors.Is(err, ErrBadFormat) {
				t.Fatalf("decode of %s input: err = %v, want ErrBadFormat", tc.name, err)
			}
		})
	}
}

// TestCollectDirStats checks the skim path agrees with the index and
// with block-level expectations for plain and compressed corpora.
func TestCollectDirStats(t *testing.T) {
	streams := []*Stream{randomStream(1), randomStream(2)}
	wantEvents := 0
	for _, s := range streams {
		wantEvents += len(s.Events)
	}
	c := NewCorpus(streams...)

	t.Run("v4", func(t *testing.T) {
		dir := t.TempDir()
		if err := c.WriteDir(dir); err != nil {
			t.Fatal(err)
		}
		st, err := CollectDirStats(dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Version != indexVersion || st.Streams != 2 || st.Events != wantEvents {
			t.Fatalf("stats = %+v", st)
		}
		if st.Blocks != 2 { // each stream has < DefaultBlockRows events
			t.Fatalf("Blocks = %d, want 2", st.Blocks)
		}
		if st.CompressedBlocks != 0 {
			t.Fatalf("CompressedBlocks = %d in an uncompressed corpus", st.CompressedBlocks)
		}
		if st.EventBytesStored != st.EventBytesRaw {
			t.Fatalf("stored %d != raw %d for raw blocks", st.EventBytesStored, st.EventBytesRaw)
		}
		if st.Frames == 0 || st.Stacks == 0 || st.InternBytes == 0 {
			t.Fatalf("intern accounting missing: %+v", st)
		}
		if st.StreamBytes == 0 || st.IndexBytes == 0 {
			t.Fatalf("file accounting missing: %+v", st)
		}
	})

	t.Run("compressed", func(t *testing.T) {
		dir := t.TempDir()
		// Use a repetitive stream so flate actually engages.
		rep := NewStream("rep")
		stk := rep.InternStackStrings("mod!F")
		for i := 0; i < 5000; i++ {
			rep.AppendEvent(Event{Type: Running, Time: Time(i * 10), Cost: 5, TID: 0, WTID: NoThread, Stack: stk})
		}
		rep.SetThread(0, "App", "T0")
		rep.Instances = append(rep.Instances, Instance{Scenario: "S1", TID: 0, Start: 0, End: 50001})
		if err := NewCorpus(rep).WriteDirCompressed(dir); err != nil {
			t.Fatal(err)
		}
		st, err := CollectDirStats(dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.CompressedBlocks == 0 {
			t.Fatal("no compressed blocks in a compressed repetitive corpus")
		}
		if st.EventBytesStored >= st.EventBytesRaw {
			t.Fatalf("stored %d >= raw %d despite compression", st.EventBytesStored, st.EventBytesRaw)
		}
	})

	t.Run("v3", func(t *testing.T) {
		dir := t.TempDir()
		if err := c.WriteDirVersion(dir, 3); err != nil {
			t.Fatal(err)
		}
		st, err := CollectDirStats(dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Version != 3 || st.Streams != 2 || st.Events != wantEvents {
			t.Fatalf("stats = %+v", st)
		}
		if st.Blocks != 0 || st.Frames != 0 || st.InternBytes != 0 {
			t.Fatalf("v3 corpus reports v4-only fields: %+v", st)
		}
	})
}

// TestV4StreamFileSmaller sanity-checks the columnar encoding pays for
// itself on a repetitive stream (the common shape after interning).
func TestV4StreamFileSmaller(t *testing.T) {
	s := NewStream("rep")
	stk := s.InternStackStrings("fs.sys!Read", "kernel!Wait", "App!Main")
	for i := 0; i < 10000; i++ {
		s.AppendEvent(Event{Type: Running, Time: Time(i * 10), Cost: 7, TID: 1, WTID: NoThread, Stack: stk})
	}
	s.SetThread(1, "App", "T1")
	s.Instances = append(s.Instances, Instance{Scenario: "S1", TID: 1, Start: 0, End: 100001})

	var v1 bytes.Buffer
	if err := s.WriteBinary(&v1); err != nil {
		t.Fatal(err)
	}
	var v4 bytes.Buffer
	it := NewInternTable()
	enc := colfmt.NewEncoder(eventColumns)
	if err := s.writeBinaryV4(&v4, it, enc, false); err != nil {
		t.Fatal(err)
	}
	if v4.Len() >= v1.Len() {
		t.Fatalf("v4 encoding (%d bytes) not smaller than v1 (%d bytes) on a repetitive stream", v4.Len(), v1.Len())
	}
}
