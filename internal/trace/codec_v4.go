package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"tracescope/internal/trace/colfmt"
)

// Format v4 stream container ("TSC4"):
//
//	magic "TSC4" | u16 version | ID |
//	local frame table:  uvarint n | n × uvarint globalFrameID
//	local stack table:  uvarint n | n × uvarint globalStackID
//	thread table:       uvarint n | n × (varint tid, process, name)
//	instance table:     uvarint n | n × (scenario, varint tid, varint start, varint end)
//	events:             uvarint n | colfmt blocks until n rows consumed
//
// Strings are uvarint-length-prefixed UTF-8, as in v1. The frame and
// stack tables hold no payload of their own — only references into the
// corpus-level InternTable (corpus.intern), which assigns global IDs in
// append order. Decoding reconstructs the stream's original local ID
// spaces exactly (local frame i is the i-th table entry; local stacks
// are translated back through the local frame table), so a v4 decode is
// indistinguishable from the v1 decode of the same stream and every
// analysis result is bit-for-bit identical across formats.
//
// Events are stored as colfmt blocks of eventColumns zig-zag varint
// columns (time delta, cost, TID, WTID, stack) behind a byte-per-row
// type column.

const (
	binaryMagicV4   = "TSC4"
	binaryVersionV4 = 4
	// eventColumns is the number of varint columns in an event block:
	// time delta, cost, TID, WTID, stack.
	eventColumns = 5
)

// byteCursor reads the v4 wire primitives from an in-memory buffer.
type byteCursor struct {
	data []byte
	off  int
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated uvarint at offset %d", ErrBadFormat, c.off)
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) varint() (int64, error) {
	v, n := binary.Varint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", ErrBadFormat, c.off)
	}
	c.off += n
	return v, nil
}

// tableLen reads a length bounded by maxTableLen.
func (c *byteCursor) tableLen() (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxTableLen {
		return 0, fmt.Errorf("%w: length %d too large", ErrBadFormat, v)
	}
	return int(v), nil
}

func (c *byteCursor) string() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("%w: string length %d too large", ErrBadFormat, n)
	}
	if uint64(len(c.data)-c.off) < n {
		return "", fmt.Errorf("%w: truncated string at offset %d", ErrBadFormat, c.off)
	}
	s := string(c.data[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

// writeBinaryV4 encodes the stream against the corpus intern table,
// interning any frames and stacks not yet in it. enc is the caller's
// reusable block encoder (column count eventColumns).
func (s *Stream) writeBinaryV4(w io.Writer, it *InternTable, enc *colfmt.Encoder, compress bool) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagicV4); err != nil {
		return err
	}
	var verBuf [2]byte
	binary.LittleEndian.PutUint16(verBuf[:], binaryVersionV4)
	if _, err := bw.Write(verBuf[:]); err != nil {
		return err
	}
	writeString(bw, s.ID)

	// Local frame table → global frame IDs, preserving local order.
	l2g := make([]FrameID, len(s.frames))
	writeUvarint(bw, uint64(len(s.frames)))
	for i, f := range s.frames {
		l2g[i] = it.internFrame(f)
		writeUvarint(bw, uint64(l2g[i]))
	}

	// Local stack table → global stack IDs, preserving local order.
	writeUvarint(bw, uint64(len(s.stacks)))
	var gframes []FrameID
	for _, st := range s.stacks {
		gframes = gframes[:0]
		for _, f := range st {
			gframes = append(gframes, l2g[f])
		}
		writeUvarint(bw, uint64(it.internStack(gframes)))
	}

	writeUvarint(bw, uint64(len(s.Threads)))
	for _, tid := range sortedThreadIDs(s.Threads) {
		ti := s.Threads[tid]
		writeVarint(bw, int64(tid))
		writeString(bw, ti.Process)
		writeString(bw, ti.Name)
	}

	writeUvarint(bw, uint64(len(s.Instances)))
	for _, in := range s.Instances {
		writeString(bw, in.Scenario)
		writeVarint(bw, int64(in.TID))
		writeVarint(bw, int64(in.Start))
		writeVarint(bw, int64(in.End))
	}

	writeUvarint(bw, uint64(len(s.Events)))
	if err := bw.Flush(); err != nil {
		return err
	}
	return writeEventBlocks(w, s.Events, enc, compress)
}

// writeEventBlocks transposes the event sequence into colfmt blocks of
// DefaultBlockRows rows each.
func writeEventBlocks(w io.Writer, events []Event, enc *colfmt.Encoder, compress bool) error {
	types := make([]byte, 0, colfmt.DefaultBlockRows)
	cols := make([][]int64, eventColumns)
	for i := range cols {
		cols[i] = make([]int64, 0, colfmt.DefaultBlockRows)
	}
	var prevTime Time
	flush := func() error {
		if len(types) == 0 {
			return nil
		}
		err := enc.EncodeBlock(w, types, cols, compress)
		types = types[:0]
		for i := range cols {
			cols[i] = cols[i][:0]
		}
		return err
	}
	for _, e := range events {
		types = append(types, byte(e.Type))
		cols[0] = append(cols[0], int64(e.Time-prevTime))
		prevTime = e.Time
		cols[1] = append(cols[1], int64(e.Cost))
		cols[2] = append(cols[2], int64(e.TID))
		cols[3] = append(cols[3], int64(e.WTID))
		cols[4] = append(cols[4], int64(e.Stack))
		if len(types) == colfmt.DefaultBlockRows {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// readBinaryV4 decodes a v4 stream file from data using the corpus
// intern table, filling the buffer set b (which carries the returned
// Stream). On error b is untouched enough to be reused; the caller owns
// returning it to its pool.
func readBinaryV4(data []byte, it *InternTable, b *decodeBufs) (*Stream, error) {
	c := &byteCursor{data: data}
	if len(data) < len(binaryMagicV4)+2 {
		return nil, fmt.Errorf("%w: truncated v4 header", ErrBadFormat)
	}
	if string(data[:4]) != binaryMagicV4 {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, data[:4])
	}
	c.off = 4
	if v := binary.LittleEndian.Uint16(data[c.off:]); v != binaryVersionV4 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	c.off += 2

	id, err := c.string()
	if err != nil {
		return nil, err
	}

	// Local frame table: global IDs resolved against the intern table.
	nFrames, err := c.tableLen()
	if err != nil {
		return nil, err
	}
	if cap(b.frames) < nFrames {
		b.frames = make([]string, 0, prealloc(nFrames))
		b.frameGlobals = make([]FrameID, 0, prealloc(nFrames))
	}
	b.frames = b.frames[:0]
	b.frameGlobals = b.frameGlobals[:0]
	for i := 0; i < nFrames; i++ {
		g, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if g >= uint64(it.NumFrames()) {
			return nil, fmt.Errorf("%w: frame table entry %d references global frame %d of %d",
				ErrBadFormat, i, g, it.NumFrames())
		}
		b.frames = append(b.frames, it.frames[g])
		b.frameGlobals = append(b.frameGlobals, FrameID(g))
	}

	// Global→local frame scratch, reset via frameGlobals afterwards.
	if cap(b.g2l) < it.NumFrames() {
		b.g2l = make([]FrameID, it.NumFrames())
		for i := range b.g2l {
			b.g2l[i] = -1
		}
	}
	b.g2l = b.g2l[:cap(b.g2l)]
	for local, g := range b.frameGlobals {
		b.g2l[g] = FrameID(local)
	}
	defer func() {
		for _, g := range b.frameGlobals {
			b.g2l[g] = -1
		}
	}()

	// Local stack table: global stack IDs, translated back into local
	// frame IDs over a single arena sized up front so subslices never
	// move.
	nStacks, err := c.tableLen()
	if err != nil {
		return nil, err
	}
	if cap(b.stackGlobals) < nStacks {
		b.stackGlobals = make([]StackID, 0, prealloc(nStacks))
	}
	b.stackGlobals = b.stackGlobals[:0]
	arenaLen := 0
	for i := 0; i < nStacks; i++ {
		g, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if g >= uint64(it.NumStacks()) {
			return nil, fmt.Errorf("%w: stack table entry %d references global stack %d of %d",
				ErrBadFormat, i, g, it.NumStacks())
		}
		b.stackGlobals = append(b.stackGlobals, StackID(g))
		arenaLen += len(it.stacks[g])
	}
	if cap(b.arena) < arenaLen {
		b.arena = make([]FrameID, 0, arenaLen)
	}
	b.arena = b.arena[:0]
	if cap(b.stacks) < nStacks {
		b.stacks = make([][]FrameID, 0, prealloc(nStacks))
	}
	b.stacks = b.stacks[:0]
	for i, g := range b.stackGlobals {
		start := len(b.arena)
		for _, gf := range it.stacks[g] {
			lf := b.g2l[gf]
			if lf < 0 {
				return nil, fmt.Errorf("%w: stack %d references frame %d absent from the local frame table",
					ErrBadFormat, i, gf)
			}
			b.arena = append(b.arena, lf)
		}
		b.stacks = append(b.stacks, b.arena[start:len(b.arena):len(b.arena)])
	}

	// Threads.
	nThreads, err := c.tableLen()
	if err != nil {
		return nil, err
	}
	if b.threads == nil {
		b.threads = make(map[ThreadID]ThreadInfo, prealloc(nThreads))
	} else {
		clear(b.threads)
	}
	for i := 0; i < nThreads; i++ {
		tid, err := c.varint()
		if err != nil {
			return nil, err
		}
		proc, err := c.string()
		if err != nil {
			return nil, err
		}
		name, err := c.string()
		if err != nil {
			return nil, err
		}
		b.threads[ThreadID(tid)] = ThreadInfo{Process: proc, Name: name}
	}

	// Instances.
	nInst, err := c.tableLen()
	if err != nil {
		return nil, err
	}
	if cap(b.instances) < nInst {
		b.instances = make([]Instance, 0, prealloc(nInst))
	}
	b.instances = b.instances[:0]
	for i := 0; i < nInst; i++ {
		scen, err := c.string()
		if err != nil {
			return nil, err
		}
		tid, err := c.varint()
		if err != nil {
			return nil, err
		}
		start, err := c.varint()
		if err != nil {
			return nil, err
		}
		end, err := c.varint()
		if err != nil {
			return nil, err
		}
		b.instances = append(b.instances, Instance{
			Scenario: scen, TID: ThreadID(tid), Start: Time(start), End: Time(end),
		})
	}

	// Events: colfmt blocks.
	nEvents, err := c.tableLen()
	if err != nil {
		return nil, err
	}
	if cap(b.events) < nEvents {
		b.events = make([]Event, 0, prealloc(nEvents))
	}
	b.events = b.events[:0]
	if b.dec == nil {
		b.dec = colfmt.NewDecoder(eventColumns)
	}
	var prevTime Time
	for len(b.events) < nEvents {
		rows, types, cols, n, err := b.dec.DecodeBlock(c.data[c.off:])
		if err != nil {
			return nil, fmt.Errorf("%w: event block at offset %d: %v", ErrBadFormat, c.off, err)
		}
		c.off += n
		if len(b.events)+rows > nEvents {
			return nil, fmt.Errorf("%w: event blocks hold more than the declared %d events", ErrBadFormat, nEvents)
		}
		dts, costs, tids, wtids, stks := cols[0], cols[1], cols[2], cols[3], cols[4]
		for r := 0; r < rows; r++ {
			prevTime += Time(dts[r])
			b.events = append(b.events, Event{
				Type:  EventType(types[r]),
				Time:  prevTime,
				Cost:  Duration(costs[r]),
				TID:   ThreadID(tids[r]),
				WTID:  ThreadID(wtids[r]),
				Stack: StackID(stks[r]),
			})
		}
	}
	if c.off != len(c.data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after events", ErrBadFormat, len(c.data)-c.off)
	}

	s := &b.stream
	// Bump the identity generation first: this allocation may have hosted
	// a different stream before recycling, and caches key on (pointer,
	// generation).
	s.gen++
	s.ID = id
	s.frames = b.frames
	s.frameIndex = nil // rebuilt lazily by InternFrame if ever needed
	s.stacks = b.stacks
	s.stackIndex = nil
	s.Events = b.events
	s.Instances = b.instances
	s.Threads = b.threads
	s.bufs = b
	if err := s.Validate(); err != nil {
		s.bufs = nil
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return s, nil
}
