package trace

import (
	"fmt"
	"os"
	"path/filepath"

	"tracescope/internal/trace/colfmt"
)

// DirStats summarizes a corpus directory's on-disk footprint without
// decoding any event payloads: index metadata plus, for version-4
// corpora, per-block storage accounting skimmed from the columnar
// stream files (tracedump -stats renders it).
type DirStats struct {
	Version   int // index version on disk
	Streams   int
	Events    int
	Instances int

	// Corpus-level intern table (version >= 4; zero before).
	Frames int
	Stacks int

	// Event-block accounting (version >= 4; zero before).
	Blocks           int
	CompressedBlocks int
	EventBytesStored int64 // block payload bytes as stored on disk
	EventBytesRaw    int64 // block payload bytes after decompression

	// File sizes.
	StreamBytes int64
	IndexBytes  int64
	InternBytes int64 // corpus.intern (version >= 4)
}

// CollectDirStats opens dir's index and skims every stream file for the
// stats above. For a version >= 4 corpus this parses stream headers and
// block framing only — event payloads are never decompressed or
// decoded — so it runs at I/O speed even on paper-scale corpora.
func CollectDirStats(dir string) (DirStats, error) {
	var st DirStats
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		return st, err
	}
	metas, version, err := parseIndex(string(data))
	if err != nil {
		return st, fmt.Errorf("trace: %s: %w", indexFile, err)
	}
	st.Version = version
	st.Streams = len(metas)
	st.IndexBytes = int64(len(data))
	for _, m := range metas {
		st.Events += m.Events
		st.Instances += len(m.Instances)
	}
	if version >= 4 {
		idata, err := os.ReadFile(filepath.Join(dir, internFile))
		if err != nil {
			return st, fmt.Errorf("trace: version-%d corpus: %w", version, err)
		}
		it, err := readInternTable(idata)
		if err != nil {
			return st, err
		}
		st.Frames = it.NumFrames()
		st.Stacks = it.NumStacks()
		st.InternBytes = int64(len(idata))
	}
	for _, m := range metas {
		fdata, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(m.File)))
		if err != nil {
			return st, err
		}
		st.StreamBytes += int64(len(fdata))
		if version >= 4 {
			if err := skimStreamV4(fdata, &st); err != nil {
				return st, fmt.Errorf("trace: %s: %w", m.File, err)
			}
		}
	}
	return st, nil
}

// skimStreamV4 walks one TSC4 file's header and block framing,
// accumulating block counts and payload sizes into st. It reads table
// lengths and string bounds but no event payloads.
func skimStreamV4(data []byte, st *DirStats) error {
	c := &byteCursor{data: data}
	if len(data) < len(binaryMagicV4)+2 || string(data[:len(binaryMagicV4)]) != binaryMagicV4 {
		return fmt.Errorf("%w: bad v4 magic", ErrBadFormat)
	}
	c.off = len(binaryMagicV4) + 2
	if _, err := c.string(); err != nil { // stream ID
		return err
	}
	for t := 0; t < 2; t++ { // frame then stack reference tables
		n, err := c.tableLen()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if _, err := c.uvarint(); err != nil {
				return err
			}
		}
	}
	nThreads, err := c.tableLen()
	if err != nil {
		return err
	}
	for i := 0; i < nThreads; i++ {
		if _, err := c.varint(); err != nil {
			return err
		}
		if _, err := c.string(); err != nil {
			return err
		}
		if _, err := c.string(); err != nil {
			return err
		}
	}
	nInst, err := c.tableLen()
	if err != nil {
		return err
	}
	for i := 0; i < nInst; i++ {
		if _, err := c.string(); err != nil {
			return err
		}
		for f := 0; f < 3; f++ {
			if _, err := c.varint(); err != nil {
				return err
			}
		}
	}
	nEvents, err := c.tableLen()
	if err != nil {
		return err
	}
	for consumed := 0; consumed < nEvents; {
		bi, n, err := colfmt.SkimBlock(data[c.off:])
		if err != nil {
			return fmt.Errorf("%w: event block at offset %d: %v", ErrBadFormat, c.off, err)
		}
		c.off += n
		consumed += bi.Rows
		st.Blocks++
		if bi.Compressed {
			st.CompressedBlocks++
		}
		st.EventBytesStored += int64(bi.StoredLen)
		st.EventBytesRaw += int64(bi.RawLen)
	}
	if c.off != len(data) {
		return fmt.Errorf("%w: %d trailing bytes after events", ErrBadFormat, len(data)-c.off)
	}
	return nil
}
