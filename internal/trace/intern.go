package trace

import (
	"fmt"
	"io"
	"strings"

	"tracescope/internal/trace/colfmt"
)

// internFile is the corpus-level intern container of format v4: every
// distinct frame string and every distinct stack in the corpus, stored
// once. Stream files reference these tables by global ID, so decoding a
// stream allocates no strings and no stack storage beyond slice
// headers.
const internFile = "corpus.intern"

// InternTable is the corpus-wide frame and stack table behind format
// v4. Frames are "module!function" strings; stacks are frame sequences
// expressed in global frame IDs. IDs are assigned in first-intern
// order and persisted append-only (colfmt intern records), so a table
// loaded from disk reproduces the writer's IDs exactly.
//
// The index maps are built lazily: pure readers (stream decode) never
// need them, writers (WriteDir, Appender) build them on first intern.
// An InternTable is not safe for concurrent mutation; DirSource only
// mutates its table inside Reload, which callers already serialize.
type InternTable struct {
	frames     []string
	frameIndex map[string]FrameID
	stacks     [][]FrameID // global frame IDs
	stackIndex map[string]StackID

	// flushedFrames/flushedStacks count records already persisted, so an
	// Appender can flush only the new tail (appendRecordsSince).
	flushedFrames int
	flushedStacks int
}

// NewInternTable returns an empty table.
func NewInternTable() *InternTable { return &InternTable{} }

// NumFrames returns the number of interned frame strings.
func (t *InternTable) NumFrames() int { return len(t.frames) }

// NumStacks returns the number of interned stacks.
func (t *InternTable) NumStacks() int { return len(t.stacks) }

// Frame returns the frame string for a global frame ID, or "" when out
// of range.
func (t *InternTable) Frame(id FrameID) string {
	if id < 0 || int(id) >= len(t.frames) {
		return ""
	}
	return t.frames[id]
}

// StackFrames returns the global frame IDs of a global stack ID. The
// returned slice is owned by the table and must not be modified.
func (t *InternTable) StackFrames(id StackID) []FrameID {
	if id < 0 || int(id) >= len(t.stacks) {
		return nil
	}
	return t.stacks[id]
}

// internFrame returns the global ID for frame, interning it if new.
func (t *InternTable) internFrame(frame string) FrameID {
	if t.frameIndex == nil {
		t.frameIndex = make(map[string]FrameID, len(t.frames))
		for i, f := range t.frames {
			t.frameIndex[f] = FrameID(i)
		}
	}
	if id, ok := t.frameIndex[frame]; ok {
		return id
	}
	id := FrameID(len(t.frames))
	t.frames = append(t.frames, frame)
	t.frameIndex[frame] = id
	return id
}

// internStack returns the global ID for a stack given in global frame
// IDs, interning it if new. The input slice is copied.
func (t *InternTable) internStack(frames []FrameID) StackID {
	if t.stackIndex == nil {
		t.stackIndex = make(map[string]StackID, len(t.stacks))
		for i, st := range t.stacks {
			t.stackIndex[stackKey(st)] = StackID(i)
		}
	}
	key := stackKey(frames)
	if id, ok := t.stackIndex[key]; ok {
		return id
	}
	id := StackID(len(t.stacks))
	cp := make([]FrameID, len(frames))
	copy(cp, frames)
	t.stacks = append(t.stacks, cp)
	t.stackIndex[key] = id
	return id
}

// addRecords parses intern records (the file body after the header, or
// an incremental tail of it) and appends them to the table, marking
// them flushed — they came from disk.
func (t *InternTable) addRecords(data []byte) error {
	err := colfmt.ReadInternRecords(data, len(t.frames),
		func(s string) error {
			t.frames = append(t.frames, s)
			if t.frameIndex != nil {
				t.frameIndex[s] = FrameID(len(t.frames) - 1)
			}
			return nil
		},
		func(fs []uint32) error {
			st := make([]FrameID, len(fs))
			for i, f := range fs {
				st[i] = FrameID(f)
			}
			t.stacks = append(t.stacks, st)
			if t.stackIndex != nil {
				t.stackIndex[stackKey(st)] = StackID(len(t.stacks) - 1)
			}
			return nil
		})
	if err != nil {
		return err
	}
	t.flushedFrames = len(t.frames)
	t.flushedStacks = len(t.stacks)
	return nil
}

// readInternTable parses a complete corpus.intern file.
func readInternTable(data []byte) (*InternTable, error) {
	if len(data) < len(colfmt.InternMagic) || string(data[:len(colfmt.InternMagic)]) != colfmt.InternMagic {
		return nil, fmt.Errorf("%w: %s: missing %q header", ErrBadFormat, internFile, strings.TrimSpace(colfmt.InternMagic))
	}
	t := NewInternTable()
	if err := t.addRecords(data[len(colfmt.InternMagic):]); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadFormat, internFile, err)
	}
	return t, nil
}

// appendRecordsSince writes every record past the flushed cursors to w
// (frames first — stacks reference frames by ID) and advances the
// cursors on success.
func (t *InternTable) appendRecordsSince(w io.Writer) error {
	for _, f := range t.frames[t.flushedFrames:] {
		if err := colfmt.AppendFrame(w, f); err != nil {
			return err
		}
	}
	var scratch []uint32
	for _, st := range t.stacks[t.flushedStacks:] {
		scratch = scratch[:0]
		for _, f := range st {
			scratch = append(scratch, uint32(f))
		}
		if err := colfmt.AppendStack(w, scratch); err != nil {
			return err
		}
	}
	t.flushedFrames = len(t.frames)
	t.flushedStacks = len(t.stacks)
	return nil
}

// writeInternFile writes the complete container: header plus every
// record, marking everything flushed.
func (t *InternTable) writeInternFile(w io.Writer) error {
	if _, err := io.WriteString(w, colfmt.InternMagic); err != nil {
		return err
	}
	t.flushedFrames, t.flushedStacks = 0, 0
	return t.appendRecordsSince(w)
}
