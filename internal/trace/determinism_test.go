package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// TestBinaryEncodeByteEquality pins the codec's determinism: encoding
// the same stream repeatedly must yield identical bytes even though the
// thread table is a map (sortedThreadIDs orders it). A byte-unstable
// encoder would defeat corpus diffing and the engine's bit-for-bit
// equivalence tests.
func TestBinaryEncodeByteEquality(t *testing.T) {
	s := randomStream(7)
	for tid := ThreadID(0); tid < 8; tid++ {
		s.SetThread(tid, "P", "T")
	}
	var first bytes.Buffer
	if err := s.WriteBinary(&first); err != nil {
		t.Fatal(err)
	}
	for run := 1; run < 4; run++ {
		var buf bytes.Buffer
		if err := s.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), buf.Bytes()) {
			t.Fatalf("binary encoding run %d differs from run 0", run)
		}
	}
}

// TestJSONEncodeByteEquality does the same for the JSON form.
func TestJSONEncodeByteEquality(t *testing.T) {
	s := randomStream(9)
	for tid := ThreadID(0); tid < 8; tid++ {
		s.SetThread(tid, "P", "T")
	}
	first, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run < 4; run++ {
		buf, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, buf) {
			t.Fatalf("JSON encoding run %d differs from run 0", run)
		}
	}
}

// TestScenariosRepeatedEquality pins Scenarios(): the counts are
// collected from a map, so repeated calls must agree exactly.
func TestScenariosRepeatedEquality(t *testing.T) {
	c := &Corpus{}
	for i := 0; i < 4; i++ {
		s := randomStream(int64(20 + i))
		s.Instances = append(s.Instances,
			Instance{Scenario: "a", TID: 1},
			Instance{Scenario: "b", TID: 2},
			Instance{Scenario: "a", TID: 3},
		)
		c.Streams = append(c.Streams, s)
	}
	first := c.Scenarios()
	if len(first) == 0 {
		t.Fatal("no scenarios")
	}
	for run := 1; run < 4; run++ {
		if got := c.Scenarios(); !reflect.DeepEqual(first, got) {
			t.Fatalf("Scenarios() run %d = %v, want %v", run, got, first)
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Name >= first[i].Name {
			t.Fatalf("scenarios not name-sorted: %v", first)
		}
	}
}
