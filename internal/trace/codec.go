package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Binary stream container format:
//
//	magic "TSCP" | u16 version | ID | frame table | stack table |
//	thread table | instance table | event sequence
//
// All integers are unsigned varints (zig-zag for signed fields); strings
// are length-prefixed UTF-8. Event times and costs are delta-encoded
// against the previous event to keep corpora small.

const (
	binaryMagic   = "TSCP"
	binaryVersion = 1
	// maxTableLen bounds table sizes read from untrusted input so a
	// corrupt length prefix cannot trigger a huge allocation.
	maxTableLen = 1 << 28
	// maxStringLen bounds individual strings (frames, IDs, names).
	maxStringLen = 1 << 20
	// maxPrealloc caps slice capacity allocated up-front from untrusted
	// lengths; longer inputs grow the slice as bytes actually arrive,
	// so a forged length cannot allocate memory the input cannot back.
	maxPrealloc = 1 << 16
)

// prealloc returns a safe initial capacity for an untrusted length.
func prealloc(n int) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// ErrBadFormat reports a malformed binary stream.
var ErrBadFormat = errors.New("trace: malformed binary stream")

// WriteBinary encodes the stream in the tracescope binary container format.
func (s *Stream) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var verBuf [2]byte
	binary.LittleEndian.PutUint16(verBuf[:], binaryVersion)
	if _, err := bw.Write(verBuf[:]); err != nil {
		return err
	}
	writeString(bw, s.ID)

	writeUvarint(bw, uint64(len(s.frames)))
	for _, f := range s.frames {
		writeString(bw, f)
	}

	writeUvarint(bw, uint64(len(s.stacks)))
	for _, st := range s.stacks {
		writeUvarint(bw, uint64(len(st)))
		for _, f := range st {
			writeUvarint(bw, uint64(f))
		}
	}

	writeUvarint(bw, uint64(len(s.Threads)))
	// Deterministic order: iterate ascending TIDs.
	for _, tid := range sortedThreadIDs(s.Threads) {
		ti := s.Threads[tid]
		writeVarint(bw, int64(tid))
		writeString(bw, ti.Process)
		writeString(bw, ti.Name)
	}

	writeUvarint(bw, uint64(len(s.Instances)))
	for _, in := range s.Instances {
		writeString(bw, in.Scenario)
		writeVarint(bw, int64(in.TID))
		writeVarint(bw, int64(in.Start))
		writeVarint(bw, int64(in.End))
	}

	writeUvarint(bw, uint64(len(s.Events)))
	var prevTime Time
	for _, e := range s.Events {
		if err := bw.WriteByte(byte(e.Type)); err != nil {
			return err
		}
		writeVarint(bw, int64(e.Time-prevTime))
		prevTime = e.Time
		writeVarint(bw, int64(e.Cost))
		writeVarint(bw, int64(e.TID))
		writeVarint(bw, int64(e.WTID))
		writeVarint(bw, int64(e.Stack))
	}
	return bw.Flush()
}

// ReadBinary decodes a stream written by WriteBinary.
func ReadBinary(r io.Reader) (*Stream, error) {
	return readBinary(bufio.NewReader(r))
}

// readBinary decodes one stream from br without reading past its end, so
// multiple concatenated streams can be decoded from a shared reader.
func readBinary(br *bufio.Reader) (*Stream, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	verBuf := make([]byte, 2)
	if _, err := io.ReadFull(br, verBuf); err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrBadFormat, err)
	}
	if v := binary.LittleEndian.Uint16(verBuf); v != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}

	id, err := readString(br)
	if err != nil {
		return nil, err
	}
	s := NewStream(id)

	nFrames, err := readLen(br)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nFrames; i++ {
		f, err := readString(br)
		if err != nil {
			return nil, err
		}
		s.InternFrame(f)
	}

	nStacks, err := readLen(br)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nStacks; i++ {
		n, err := readLen(br)
		if err != nil {
			return nil, err
		}
		frames := make([]FrameID, 0, prealloc(n))
		for j := 0; j < n; j++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: stack frame: %v", ErrBadFormat, err)
			}
			if v >= uint64(len(s.frames)) {
				return nil, fmt.Errorf("%w: stack frame id %d out of range", ErrBadFormat, v)
			}
			frames = append(frames, FrameID(v))
		}
		s.InternStack(frames)
	}

	nThreads, err := readLen(br)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nThreads; i++ {
		tid, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		proc, err := readString(br)
		if err != nil {
			return nil, err
		}
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		s.SetThread(ThreadID(tid), proc, name)
	}

	nInst, err := readLen(br)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nInst; i++ {
		scen, err := readString(br)
		if err != nil {
			return nil, err
		}
		tid, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		start, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		end, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		s.Instances = append(s.Instances, Instance{
			Scenario: scen, TID: ThreadID(tid), Start: Time(start), End: Time(end),
		})
	}

	nEvents, err := readLen(br)
	if err != nil {
		return nil, err
	}
	s.Events = make([]Event, 0, prealloc(nEvents))
	var prevTime Time
	for i := 0; i < nEvents; i++ {
		tb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: event type: %v", ErrBadFormat, err)
		}
		dt, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		cost, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		tid, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		wtid, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		stack, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		prevTime += Time(dt)
		s.Events = append(s.Events, Event{
			Type:  EventType(tb),
			Time:  prevTime,
			Cost:  Duration(cost),
			TID:   ThreadID(tid),
			WTID:  ThreadID(wtid),
			Stack: StackID(stack),
		})
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return s, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // bufio defers errors to Flush
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // bufio defers errors to Flush
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s) //nolint:errcheck // bufio defers errors to Flush
}

func readLen(br *bufio.Reader) (int, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("%w: length: %v", ErrBadFormat, err)
	}
	if v > maxTableLen {
		return 0, fmt.Errorf("%w: length %d too large", ErrBadFormat, v)
	}
	return int(v), nil
}

func readVarint(br *bufio.Reader) (int64, error) {
	v, err := binary.ReadVarint(br)
	if err != nil {
		return 0, fmt.Errorf("%w: varint: %v", ErrBadFormat, err)
	}
	return v, nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := readLen(br)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("%w: string length %d too large", ErrBadFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrBadFormat, err)
	}
	return string(buf), nil
}

func sortedThreadIDs(m map[ThreadID]ThreadInfo) []ThreadID {
	ids := make([]ThreadID, 0, len(m))
	for tid := range m {
		ids = append(ids, tid)
	}
	sort.SliceStable(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// streamJSON is the JSON wire form of a Stream.
type streamJSON struct {
	ID        string                `json:"id"`
	Frames    []string              `json:"frames"`
	Stacks    [][]FrameID           `json:"stacks"`
	Threads   map[string]ThreadInfo `json:"threads,omitempty"`
	Instances []Instance            `json:"instances,omitempty"`
	Events    []eventJSON           `json:"events"`
}

type eventJSON struct {
	Type  string   `json:"type"`
	Time  Time     `json:"t"`
	Cost  Duration `json:"c,omitempty"`
	TID   ThreadID `json:"tid"`
	WTID  ThreadID `json:"wtid,omitempty"`
	Stack StackID  `json:"stack"`
}

// MarshalJSON encodes the stream as JSON, mainly for debugging and
// interchange with external tooling.
func (s *Stream) MarshalJSON() ([]byte, error) {
	js := streamJSON{
		ID:        s.ID,
		Frames:    s.frames,
		Stacks:    s.stacks,
		Instances: s.Instances,
		Events:    make([]eventJSON, len(s.Events)),
	}
	if len(s.Threads) > 0 {
		js.Threads = make(map[string]ThreadInfo, len(s.Threads))
		for tid, ti := range s.Threads {
			js.Threads[fmt.Sprint(tid)] = ti
		}
	}
	for i, e := range s.Events {
		js.Events[i] = eventJSON{
			Type: e.Type.String(), Time: e.Time, Cost: e.Cost,
			TID: e.TID, WTID: e.WTID, Stack: e.Stack,
		}
	}
	return json.Marshal(js)
}

// UnmarshalJSON decodes a stream from its JSON wire form.
func (s *Stream) UnmarshalJSON(data []byte) error {
	var js streamJSON
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	ns := NewStream(js.ID)
	for _, f := range js.Frames {
		ns.InternFrame(f)
	}
	for _, st := range js.Stacks {
		ns.InternStack(st)
	}
	for tidStr, ti := range js.Threads {
		var tid ThreadID
		if _, err := fmt.Sscan(tidStr, &tid); err != nil {
			return fmt.Errorf("trace: bad thread id %q: %v", tidStr, err)
		}
		ns.SetThread(tid, ti.Process, ti.Name)
	}
	ns.Instances = js.Instances
	for _, e := range js.Events {
		var t EventType
		switch e.Type {
		case "running":
			t = Running
		case "wait":
			t = Wait
		case "unwait":
			t = Unwait
		case "hwservice":
			t = HardwareService
		default:
			return fmt.Errorf("trace: unknown event type %q", e.Type)
		}
		ns.AppendEvent(Event{Type: t, Time: e.Time, Cost: e.Cost, TID: e.TID, WTID: e.WTID, Stack: e.Stack})
	}
	if err := ns.Validate(); err != nil {
		return err
	}
	*s = *ns
	return nil
}
