package trace

import (
	"fmt"
	"sort"
)

// Source is the corpus-access seam the analysis layers run over: stream
// and instance metadata cheap enough to enumerate without decoding event
// payloads, plus on-demand fetch of individual streams. Three
// implementations exist:
//
//   - *Corpus: the in-memory corpus; Stream returns resident streams.
//   - *DirSource: a lazy directory-backed corpus; metadata comes from the
//     corpus.index v2 file and Stream decodes one file on demand.
//   - *CachedSource: a wrapper adding a bounded LRU of decoded streams,
//     so repeated access over a lazy source stays out-of-core with peak
//     memory proportional to the cache limit, not the corpus size.
//
// Stream order is significant everywhere: EventIDs and InstanceRefs
// reference streams by index, so every implementation must present the
// same indexing for the same corpus.
type Source interface {
	// NumStreams returns the number of streams.
	NumStreams() int
	// NumInstances returns the total number of scenario instances.
	NumInstances() int
	// NumEvents returns the total number of events across all streams.
	NumEvents() int
	// TotalDuration sums the time spans of all streams.
	TotalDuration() Duration
	// Scenarios returns the sorted scenario names with instance counts.
	Scenarios() []ScenarioCount
	// InstancesOf returns references to every instance of the named
	// scenario, in stream-then-instance order. "" selects all instances.
	InstancesOf(scenario string) []InstanceRef
	// InstanceMeta resolves a reference to its instance record without
	// decoding the stream's events.
	InstanceMeta(ref InstanceRef) Instance
	// StreamMeta returns stream i's metadata without decoding events.
	// The returned Instances slice is shared and must not be modified.
	StreamMeta(i int) StreamMeta
	// Stream fetches (and for lazy sources, decodes) stream i.
	Stream(i int) (*Stream, error)
}

// StreamMeta is the per-stream metadata available without decoding event
// payloads — what the corpus.index v2 records per stream.
type StreamMeta struct {
	// File is the backing file name relative to the corpus directory,
	// "" for in-memory streams.
	File string
	// ID names the stream (for example the originating machine).
	ID string
	// Events is the stream's event count.
	Events int
	// Duration is the time span covered by the stream's events.
	Duration Duration
	// Instances lists the scenario instances recorded in the stream.
	// Shared with the source; treat as read-only.
	Instances []Instance
}

// Stream returns stream i, satisfying Source. In-memory streams never
// fail to fetch.
func (c *Corpus) Stream(i int) (*Stream, error) {
	if i < 0 || i >= len(c.Streams) {
		return nil, fmt.Errorf("trace: stream %d out of range (%d streams)", i, len(c.Streams))
	}
	return c.Streams[i], nil
}

// StreamMeta returns stream i's metadata, satisfying Source. The
// Instances slice is shared with the stream; treat as read-only.
func (c *Corpus) StreamMeta(i int) StreamMeta {
	s := c.Streams[i]
	return StreamMeta{
		ID:        s.ID,
		Events:    len(s.Events),
		Duration:  s.Duration(),
		Instances: s.Instances,
	}
}

// InstanceMeta resolves a reference to its instance record, satisfying
// Source.
func (c *Corpus) InstanceMeta(ref InstanceRef) Instance {
	return c.Streams[ref.Stream].Instances[ref.Instance]
}

// scenarioCounts tallies sorted scenario counts over per-stream instance
// metadata (shared by the Source implementations).
func scenarioCounts(metas []StreamMeta) []ScenarioCount {
	counts := make(map[string]int)
	for _, m := range metas {
		for _, in := range m.Instances {
			counts[in.Scenario]++
		}
	}
	out := make([]ScenarioCount, 0, len(counts))
	for name, n := range counts {
		out = append(out, ScenarioCount{Name: name, Instances: n})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// instanceRefs enumerates references to the named scenario's instances
// over per-stream instance metadata. "" selects all instances.
func instanceRefs(metas []StreamMeta, scenario string) []InstanceRef {
	var out []InstanceRef
	for si, m := range metas {
		for ii, in := range m.Instances {
			if scenario == "" || in.Scenario == scenario {
				out = append(out, InstanceRef{Stream: si, Instance: ii})
			}
		}
	}
	return out
}
