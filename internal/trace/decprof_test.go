package trace

import (
	"math/rand"
	"testing"
)

// bigStream builds a ~n-event stream with realistic stack/thread variety
// for decode benchmarking.
func bigStream(seed int64, n int) *Stream {
	r := rand.New(rand.NewSource(seed))
	s := NewStream("big")
	frames := []string{"fs.sys!Read", "fv.sys!Query", "kernel!Wait", "App!Main", "se.sys!Decrypt", "net.sys!Recv", "av.sys!Scan"}
	var stacks []StackID
	for i := 0; i < 40; i++ {
		depth := 1 + r.Intn(6)
		fs := make([]string, depth)
		for j := range fs {
			fs[j] = frames[r.Intn(len(frames))]
		}
		stacks = append(stacks, s.InternStackStrings(fs...))
	}
	var t Time
	for i := 0; i < n; i++ {
		t += Time(r.Intn(500))
		typ := EventType(r.Intn(int(numEventTypes)))
		e := Event{
			Type: typ, Time: t, Cost: Duration(r.Intn(100000)),
			TID: ThreadID(r.Intn(16)), WTID: NoThread,
			Stack: stacks[r.Intn(len(stacks))],
		}
		if typ == Unwait {
			e.WTID = ThreadID(r.Intn(16))
			e.Cost = 0
		}
		s.AppendEvent(e)
	}
	s.SetThread(0, "Browser", "UI")
	s.Instances = append(s.Instances, Instance{Scenario: "S1", TID: 0, Start: 0, End: t + 1})
	return s
}

func benchDir(b *testing.B, version int) string {
	b.Helper()
	c := &Corpus{}
	for i := 0; i < 8; i++ {
		c.Streams = append(c.Streams, bigStream(int64(i), 10000))
	}
	dir := b.TempDir()
	var err error
	if version >= 4 {
		err = c.WriteDir(dir)
	} else {
		err = c.WriteDirVersion(dir, version)
	}
	if err != nil {
		b.Fatal(err)
	}
	return dir
}

func benchSweep(b *testing.B, dir string, recycle bool) {
	src, err := OpenDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < src.NumStreams(); j++ {
			s, err := src.Stream(j)
			if err != nil {
				b.Fatal(err)
			}
			if recycle {
				src.Recycle(s)
			}
		}
	}
}

func BenchmarkDecodeSweepV3(b *testing.B)       { benchSweep(b, benchDir(b, 3), false) }
func BenchmarkDecodeSweepV4(b *testing.B)       { benchSweep(b, benchDir(b, 4), false) }
func BenchmarkDecodeSweepV4Pooled(b *testing.B) { benchSweep(b, benchDir(b, 4), true) }
