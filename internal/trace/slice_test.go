package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func sliceFixture() *Stream {
	s := NewStream("src")
	st := s.InternStackStrings("fs.sys!Read", "App!Main")
	s.SetThread(1, "App", "UI")
	s.SetThread(2, "App", "W0")
	s.AppendEvent(Event{Type: Running, Time: 0, Cost: 1000, TID: 1, WTID: NoThread, Stack: st})
	s.AppendEvent(Event{Type: Wait, Time: 1000, Cost: 4000, TID: 1, WTID: NoThread, Stack: st})
	s.AppendEvent(Event{Type: Unwait, Time: 5000, TID: 2, WTID: 1, Stack: st})
	s.AppendEvent(Event{Type: Running, Time: 9000, Cost: 1000, TID: 1, WTID: NoThread, Stack: st})
	s.Instances = append(s.Instances, Instance{Scenario: "S", TID: 1, Start: 0, End: 10000})
	return s
}

func TestSliceWindow(t *testing.T) {
	s := sliceFixture()
	out, err := s.Slice(2000, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// The leading running event (ends 1000) and trailing one (starts
	// 9000) are excluded; the wait is clipped to [2000,5000) -> rebased
	// [0,3000); the unwait at 5000 -> 3000.
	if len(out.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(out.Events))
	}
	w := out.Events[0]
	if w.Type != Wait || w.Time != 0 || w.Cost != 3000 {
		t.Errorf("clipped wait = %+v", w)
	}
	u := out.Events[1]
	if u.Type != Unwait || u.Time != 3000 || u.WTID != 1 {
		t.Errorf("rebased unwait = %+v", u)
	}
	// Instance clipped and rebased.
	if len(out.Instances) != 1 || out.Instances[0].Start != 0 || out.Instances[0].End != 4000 {
		t.Errorf("instances = %+v", out.Instances)
	}
	// Thread metadata carried for used threads.
	if out.ThreadName(1) != "App!UI" || out.ThreadName(2) != "App!W0" {
		t.Error("thread metadata lost")
	}
	// Frames re-interned.
	if out.NumFrames() == 0 || out.Frame(0) == "" {
		t.Error("frame table empty")
	}
}

func TestSliceEmptyWindow(t *testing.T) {
	s := sliceFixture()
	if _, err := s.Slice(5, 5); err == nil {
		t.Error("empty window accepted")
	}
	out, err := s.Slice(20000, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != 0 {
		t.Error("out-of-range window has events")
	}
}

func TestMergeOffsetsAndRemaps(t *testing.T) {
	a := sliceFixture()
	b := sliceFixture()
	m, err := Merge("merged", 1000, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Events) != len(a.Events)+len(b.Events) {
		t.Fatalf("events = %d", len(m.Events))
	}
	if len(m.Instances) != 2 {
		t.Fatalf("instances = %d", len(m.Instances))
	}
	// The second stream's instance starts after the first stream's span
	// plus the gap and uses remapped TIDs.
	first, second := m.Instances[0], m.Instances[1]
	if second.Start <= first.End {
		t.Error("second stream not offset")
	}
	if second.TID == first.TID {
		t.Error("thread IDs collide after merge")
	}
	// Events sorted by time.
	for i := 1; i < len(m.Events); i++ {
		if m.Events[i].Time < m.Events[i-1].Time {
			t.Fatal("merged events unsorted")
		}
	}
}

func TestMergeNothing(t *testing.T) {
	if _, err := Merge("x", 0); err == nil {
		t.Error("empty merge accepted")
	}
}

func TestEventsCSV(t *testing.T) {
	s := sliceFixture()
	var buf bytes.Buffer
	if err := s.WriteEventsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Events)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(s.Events)+1)
	}
	if rows[0][1] != "type" || rows[1][1] != "running" {
		t.Errorf("unexpected rows: %v %v", rows[0], rows[1])
	}
	if !strings.Contains(rows[1][7], "fs.sys!Read") {
		t.Errorf("stack column = %q", rows[1][7])
	}
}

func TestInstancesCSV(t *testing.T) {
	c := NewCorpus(sliceFixture(), sliceFixture())
	var buf bytes.Buffer
	if err := c.WriteInstancesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 instances
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[1][2] != "S" || rows[2][0] != "1" {
		t.Errorf("instance rows wrong: %v %v", rows[1], rows[2])
	}
}
