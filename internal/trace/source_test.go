package trace

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// sourceTestCorpus builds a deterministic multi-stream corpus with two
// scenarios, for exercising the Source implementations.
func sourceTestCorpus(n int) *Corpus {
	c := &Corpus{}
	for i := 0; i < n; i++ {
		s := randomStream(int64(100 + i))
		s.ID = fmt.Sprintf("machine-%02d", i)
		if len(s.Events) > 0 {
			end := s.Events[len(s.Events)-1].End()
			s.Instances = append(s.Instances, Instance{
				Scenario: "S2", TID: 1, Start: 0, End: end/2 + 1,
			})
		}
		c.Add(s)
	}
	return c
}

func TestCorpusSatisfiesSource(t *testing.T) {
	c := sourceTestCorpus(3)
	var src Source = c
	if src.NumStreams() != 3 {
		t.Fatalf("NumStreams = %d, want 3", src.NumStreams())
	}
	for i := 0; i < 3; i++ {
		s, err := src.Stream(i)
		if err != nil {
			t.Fatalf("Stream(%d): %v", i, err)
		}
		if s != c.Streams[i] {
			t.Fatalf("Stream(%d) is not the resident stream", i)
		}
		m := src.StreamMeta(i)
		if m.ID != s.ID || m.Events != len(s.Events) || m.Duration != s.Duration() {
			t.Fatalf("StreamMeta(%d) = %+v disagrees with stream", i, m)
		}
		if !reflect.DeepEqual(m.Instances, s.Instances) {
			t.Fatalf("StreamMeta(%d).Instances disagree", i)
		}
	}
	for _, ref := range src.InstancesOf("") {
		_, in := c.Instance(ref)
		if got := src.InstanceMeta(ref); got != in {
			t.Fatalf("InstanceMeta(%v) = %+v, want %+v", ref, got, in)
		}
	}
	if _, err := src.Stream(99); err == nil {
		t.Fatal("Stream(99) succeeded on a 3-stream corpus")
	}
}

func TestDirSourceMatchesCorpus(t *testing.T) {
	c := sourceTestCorpus(4)
	dir := t.TempDir()
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	if d.NumStreams() != c.NumStreams() ||
		d.NumInstances() != c.NumInstances() ||
		d.NumEvents() != c.NumEvents() ||
		d.TotalDuration() != c.TotalDuration() {
		t.Fatalf("totals diverge: dir (%d,%d,%d,%v) vs corpus (%d,%d,%d,%v)",
			d.NumStreams(), d.NumInstances(), d.NumEvents(), d.TotalDuration(),
			c.NumStreams(), c.NumInstances(), c.NumEvents(), c.TotalDuration())
	}
	if !reflect.DeepEqual(d.Scenarios(), c.Scenarios()) {
		t.Fatalf("Scenarios diverge: %v vs %v", d.Scenarios(), c.Scenarios())
	}
	for _, scen := range []string{"", "S1", "S2", "absent"} {
		if !reflect.DeepEqual(d.InstancesOf(scen), c.InstancesOf(scen)) {
			t.Fatalf("InstancesOf(%q) diverge", scen)
		}
	}
	for i := 0; i < c.NumStreams(); i++ {
		dm, cm := d.StreamMeta(i), c.StreamMeta(i)
		cm.File = dm.File // in-memory metas carry no file name
		if !reflect.DeepEqual(dm, cm) {
			t.Fatalf("StreamMeta(%d) diverge:\n dir    %+v\n corpus %+v", i, dm, cm)
		}
		s, err := d.Stream(i)
		if err != nil {
			t.Fatalf("Stream(%d): %v", i, err)
		}
		if !streamsEqual(s, c.Streams[i]) {
			t.Fatalf("decoded stream %d differs from original", i)
		}
	}
	for _, ref := range c.InstancesOf("") {
		if d.InstanceMeta(ref) != c.InstanceMeta(ref) {
			t.Fatalf("InstanceMeta(%v) diverges", ref)
		}
	}

	mat, err := d.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Streams {
		if !streamsEqual(mat.Streams[i], c.Streams[i]) {
			t.Fatalf("materialised stream %d differs", i)
		}
	}
}

// TestOpenDirV1Compat writes a legacy version-1 index (plain file names,
// no metadata) and checks both the eager and lazy loaders recover the
// full corpus from it.
func TestOpenDirV1Compat(t *testing.T) {
	c := sourceTestCorpus(3)
	dir := t.TempDir()
	// A v1 index points at v1 (TSCP) stream files; version 2 writes those.
	if err := c.WriteDirVersion(dir, 2); err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := range c.Streams {
		names = append(names, fmt.Sprintf("stream-%05d.tscp", i))
	}
	v1 := strings.Join(names, "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, indexFile), []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}

	rc, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir on v1 index: %v", err)
	}
	if rc.NumStreams() != c.NumStreams() {
		t.Fatalf("ReadDir: %d streams, want %d", rc.NumStreams(), c.NumStreams())
	}

	d, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir on v1 index: %v", err)
	}
	if d.NumEvents() != c.NumEvents() || d.NumInstances() != c.NumInstances() {
		t.Fatalf("v1 backfill: (%d events, %d instances), want (%d, %d)",
			d.NumEvents(), d.NumInstances(), c.NumEvents(), c.NumInstances())
	}
	if !reflect.DeepEqual(d.Scenarios(), c.Scenarios()) {
		t.Fatal("v1 backfill: scenarios diverge")
	}
}

// TestIndexCRLF rewrites the index with Windows line endings; both
// loaders must still parse it.
func TestIndexCRLF(t *testing.T) {
	c := sourceTestCorpus(2)
	dir := t.TempDir()
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, indexFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crlf := strings.ReplaceAll(string(data), "\n", "\r\n")
	if err := os.WriteFile(path, []byte(crlf), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err != nil {
		t.Fatalf("ReadDir on CRLF index: %v", err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir on CRLF index: %v", err)
	}
	if d.NumEvents() != c.NumEvents() {
		t.Fatalf("CRLF index: %d events, want %d", d.NumEvents(), c.NumEvents())
	}
}

// TestIndexRejectsBadEntries checks that duplicate and path-escaping
// file entries fail with ErrBadFormat before any stream file is opened,
// in both index versions and through both loaders.
func TestIndexRejectsBadEntries(t *testing.T) {
	cases := []struct {
		name  string
		entry string
	}{
		{"dotdot", "../evil.tscp"},
		{"nested-dotdot", "sub/../../evil.tscp"},
		{"absolute", "/etc/passwd"},
		{"backslash-absolute", `\\server\share`},
		{"drive", `C:\evil.tscp`},
		{"dot", "./stream-00000.tscp"},
		{"empty-element", "a//b.tscp"},
	}
	quote := func(s string) string { return fmt.Sprintf("%q", s) }
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, index := range []string{
				// v1: plain names.
				"stream-00000.tscp\n" + tc.entry + "\n",
				// v2: quoted stream records.
				"TSINDEX 2\ns " + quote("stream-00000.tscp") + " \"m\" 0 0 0\ns " +
					quote(tc.entry) + " \"m\" 0 0 0\n",
			} {
				dir := t.TempDir()
				if err := os.WriteFile(filepath.Join(dir, indexFile), []byte(index), 0o644); err != nil {
					t.Fatal(err)
				}
				if _, err := ReadDir(dir); !errors.Is(err, ErrBadFormat) {
					t.Fatalf("ReadDir accepted %q (err=%v)", tc.entry, err)
				}
				if _, err := OpenDir(dir); !errors.Is(err, ErrBadFormat) {
					t.Fatalf("OpenDir accepted %q (err=%v)", tc.entry, err)
				}
			}
		})
	}

	// Duplicates of a legitimate entry.
	c := sourceTestCorpus(1)
	dir := t.TempDir()
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	dup := string(data) + strings.Join(lines[1:], "")
	if err := os.WriteFile(filepath.Join(dir, indexFile), []byte(dup), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("ReadDir accepted duplicate entry (err=%v)", err)
	}
	if _, err := OpenDir(dir); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("OpenDir accepted duplicate entry (err=%v)", err)
	}
}

// TestDirSourceStaleIndex corrupts the index's instance records for a
// stream; fetching that stream must fail loudly rather than letting
// stale InstanceRefs index out of range.
func TestDirSourceStaleIndex(t *testing.T) {
	c := sourceTestCorpus(1)
	dir := t.TempDir()
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		t.Fatal(err)
	}
	// Drop the last instance record and decrement the trailing
	// instance-count field of the stream record.
	lines := splitLines(string(data))
	lines = lines[:len(lines)-1]
	n := len(c.Streams[0].Instances)
	cut := strings.LastIndex(lines[1], " ")
	lines[1] = lines[1][:cut+1] + fmt.Sprint(n-1)
	if err := os.WriteFile(filepath.Join(dir, indexFile),
		[]byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stream(0); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("stale index not detected on fetch (err=%v)", err)
	}
}

func TestCachedSourceLRU(t *testing.T) {
	c := sourceTestCorpus(5)
	dir := t.TempDir()
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCachedSource(d, 2)

	fetch := func(i int) *Stream {
		t.Helper()
		s, err := cs.Stream(i)
		if err != nil {
			t.Fatalf("Stream(%d): %v", i, err)
		}
		if !streamsEqual(s, c.Streams[i]) {
			t.Fatalf("cached stream %d differs from original", i)
		}
		return s
	}

	s0 := fetch(0)
	fetch(1)
	if got := cs.Stats(); got.Hits != 0 || got.Misses != 2 || got.Evictions != 0 || got.Size != 2 {
		t.Fatalf("after two cold fetches: %+v", got)
	}
	if again := fetch(0); again != s0 {
		t.Fatal("hit did not return the cached stream pointer")
	}
	if got := cs.Stats(); got.Hits != 1 || got.Misses != 2 {
		t.Fatalf("after hit: %+v", got)
	}
	fetch(2) // evicts 1 (0 was touched more recently)
	if got := cs.Stats(); got.Evictions != 1 || got.Size != 2 {
		t.Fatalf("after eviction: %+v", got)
	}
	if again := fetch(0); again != s0 {
		t.Fatal("LRU evicted the recently used stream")
	}
	fetch(1) // re-decode: a miss
	if got := cs.Stats(); got.Misses != 4 {
		t.Fatalf("re-fetch of evicted stream was not a miss: %+v", got)
	}
	if got := cs.Stats(); got.HighWater > 3 {
		t.Fatalf("sequential high-water %d exceeds limit+1", got.HighWater)
	}

	var evicted []int
	cs.AddEvictionHook(func(i int) { evicted = append(evicted, i) })
	cs.SetLimit(1)
	if len(evicted) != 1 {
		t.Fatalf("SetLimit(1) evicted %v, want one stream", evicted)
	}
	if got := cs.Stats(); got.Size != 1 {
		t.Fatalf("after SetLimit(1): %+v", got)
	}
	if cs.Limit() != 1 {
		t.Fatalf("Limit() = %d, want 1", cs.Limit())
	}
	if cs.Unwrap() != d {
		t.Fatal("Unwrap did not return the wrapped source")
	}
}

func TestCachedSourceUnbounded(t *testing.T) {
	c := sourceTestCorpus(4)
	dir := t.TempDir()
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCachedSource(d, 0)
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			if _, err := cs.Stream(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := cs.Stats()
	if got.Misses != 4 || got.Hits != 8 || got.Evictions != 0 || got.Size != 4 {
		t.Fatalf("unbounded cache stats: %+v", got)
	}
}

// TestCachedSourceConcurrent hammers one bounded cache from many
// goroutines (run under -race in CI) and checks every fetch yields the
// right stream and the high-water mark stays within limit + fetchers.
func TestCachedSourceConcurrent(t *testing.T) {
	const (
		limit   = 2
		workers = 8
		rounds  = 40
	)
	c := sourceTestCorpus(6)
	dir := t.TempDir()
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCachedSource(d, limit)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Mostly hammer a hot set that fits the cache (hits and
				// in-flight sharing), with periodic cold fetches to keep
				// eviction churning underneath.
				i := r % limit
				if r%10 == 0 {
					i = limit + (r/10)%(c.NumStreams()-limit)
				}
				s, err := cs.Stream(i)
				if err != nil {
					errs <- err
					return
				}
				if s.ID != c.Streams[i].ID {
					errs <- fmt.Errorf("stream %d: got ID %q", i, s.ID)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got := cs.Stats()
	if got.HighWater > limit+workers {
		t.Fatalf("high-water %d exceeds limit(%d) + workers(%d)", got.HighWater, limit, workers)
	}
	if got.Size > limit {
		t.Fatalf("final size %d exceeds limit %d", got.Size, limit)
	}
	if got.Misses == 0 || got.Hits == 0 {
		t.Fatalf("degenerate concurrency test: %+v", got)
	}
}

func TestSourceInstancesCSV(t *testing.T) {
	c := sourceTestCorpus(2)
	dir := t.TempDir()
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var mem, lazy strings.Builder
	if err := c.WriteInstancesCSV(&mem); err != nil {
		t.Fatal(err)
	}
	if err := WriteSourceInstancesCSV(&lazy, d); err != nil {
		t.Fatal(err)
	}
	if mem.String() != lazy.String() {
		t.Fatal("lazy instances CSV differs from in-memory export")
	}
}
