package trace

import (
	"sync"

	"tracescope/internal/trace/colfmt"
)

// decodeBufs is the complete buffer set one v4 stream decode consumes:
// the raw file bytes, the event/frame/stack/instance slices, the stack
// arena backing every stack's frame list, the global→local scratch, the
// colfmt column decoder, and the Stream struct itself. Recycling a
// decoded stream returns all of it to the pool in one step.
type decodeBufs struct {
	stream Stream

	raw          []byte
	events       []Event
	frames       []string
	frameGlobals []FrameID // local frame table as global IDs (g2l reset list)
	stackGlobals []StackID // local stack table as global IDs
	stacks       [][]FrameID
	arena        []FrameID // backing store for stacks' frame lists
	instances    []Instance
	threads      map[ThreadID]ThreadInfo
	g2l          []FrameID // global frame ID → local, -1 when absent
	dec          *colfmt.Decoder
}

// StreamPool is a freelist of v4 decode buffers. DirSource draws from
// it on every v4 decode; buffers only return via Recycle, so sources
// whose callers never recycle degrade gracefully to ordinary GC-managed
// allocation.
//
// The pooling contract (DESIGN.md §10): a decoded stream and everything
// reachable from it — events, stack slices, instance records — is valid
// only until the stream is recycled. CachedSource's pin protocol
// guarantees no consumer still holds the stream when that happens;
// callers recycling manually give the same guarantee themselves. Frame
// strings are exempt: they live in the corpus InternTable and are never
// recycled.
type StreamPool struct {
	mu   sync.Mutex
	free []*decodeBufs

	gets     int64
	reuses   int64
	recycles int64
}

// StreamPoolStats reports pool effectiveness.
type StreamPoolStats struct {
	// Gets counts buffer-set checkouts (one per v4 decode).
	Gets int64
	// Reuses counts checkouts served from the freelist.
	Reuses int64
	// Recycles counts buffer sets returned.
	Recycles int64
}

// NewStreamPool returns an empty pool.
func NewStreamPool() *StreamPool { return &StreamPool{} }

// get checks a buffer set out of the pool, allocating one when the
// freelist is empty.
func (p *StreamPool) get() *decodeBufs {
	p.mu.Lock()
	p.gets++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	return &decodeBufs{dec: colfmt.NewDecoder(eventColumns)}
}

// put returns a buffer set whose stream was never handed out (decode
// errors) straight to the freelist.
func (p *StreamPool) put(b *decodeBufs) {
	p.mu.Lock()
	p.recycles++
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// Recycle returns a decoded stream's buffers to the pool. The caller
// must guarantee that no references to the stream, its events, stacks,
// or instances remain — see the pooling contract above. Streams not
// decoded from this pool's source (v1 streams, generated streams) have
// no attached buffers and are ignored.
func (p *StreamPool) Recycle(s *Stream) {
	if s == nil || s.bufs == nil {
		return
	}
	b := s.bufs
	// Detach first so a second Recycle of the same stream is a no-op
	// instead of a double-free.
	s.bufs = nil
	p.put(b)
}

// Stats returns a snapshot of the pool counters.
func (p *StreamPool) Stats() StreamPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return StreamPoolStats{Gets: p.gets, Reuses: p.reuses, Recycles: p.recycles}
}
