package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEventsCSV exports the stream's events for spreadsheet or external
// analysis: one row per event with resolved thread names and callstacks
// (frames joined innermost-first with " < ").
func (s *Stream) WriteEventsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"index", "type", "time_us", "cost_us", "tid", "thread", "wtid", "stack",
	}); err != nil {
		return err
	}
	for i, e := range s.Events {
		wtid := ""
		if e.WTID != NoThread {
			wtid = strconv.Itoa(int(e.WTID))
		}
		row := []string{
			strconv.Itoa(i),
			e.Type.String(),
			strconv.FormatInt(int64(e.Time), 10),
			strconv.FormatInt(int64(e.Cost), 10),
			strconv.Itoa(int(e.TID)),
			s.ThreadName(e.TID),
			wtid,
			strings.Join(s.StackStrings(e.Stack), " < "),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteInstancesCSV exports a corpus's scenario instances, one row per
// instance with stream provenance.
func (c *Corpus) WriteInstancesCSV(w io.Writer) error {
	return WriteSourceInstancesCSV(w, c)
}

// WriteSourceInstancesCSV exports a source's scenario instances, one row
// per instance with stream provenance. Streams are fetched one at a time
// (the thread-name column needs decoded thread tables), so lazy sources
// export with a single stream resident.
func WriteSourceInstancesCSV(w io.Writer, src Source) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"stream", "stream_id", "scenario", "tid", "thread", "start_us", "end_us", "duration_ms",
	}); err != nil {
		return err
	}
	for si := 0; si < src.NumStreams(); si++ {
		s, err := src.Stream(si)
		if err != nil {
			return fmt.Errorf("trace: instances CSV: stream %d: %w", si, err)
		}
		for _, in := range s.Instances {
			row := []string{
				strconv.Itoa(si),
				s.ID,
				in.Scenario,
				strconv.Itoa(int(in.TID)),
				s.ThreadName(in.TID),
				strconv.FormatInt(int64(in.Start), 10),
				strconv.FormatInt(int64(in.End), 10),
				fmt.Sprintf("%.3f", in.Duration().Milliseconds()),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
