package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

// randomStream builds a pseudo-random but valid stream from a seed.
func randomStream(seed int64) *Stream {
	r := rand.New(rand.NewSource(seed))
	s := NewStream("rnd")
	frames := []string{"fs.sys!Read", "fv.sys!Query", "kernel!Wait", "App!Main", "se.sys!Decrypt"}
	var stacks []StackID
	for i := 0; i < 6; i++ {
		depth := 1 + r.Intn(4)
		fs := make([]string, depth)
		for j := range fs {
			fs[j] = frames[r.Intn(len(frames))]
		}
		stacks = append(stacks, s.InternStackStrings(fs...))
	}
	var t Time
	for i := 0; i < 1+r.Intn(200); i++ {
		t += Time(r.Intn(5000))
		typ := EventType(r.Intn(int(numEventTypes)))
		e := Event{
			Type:  typ,
			Time:  t,
			Cost:  Duration(r.Intn(100000)),
			TID:   ThreadID(r.Intn(8)),
			WTID:  NoThread,
			Stack: stacks[r.Intn(len(stacks))],
		}
		if typ == Unwait {
			e.WTID = ThreadID(r.Intn(8))
			e.Cost = 0
		}
		s.AppendEvent(e)
	}
	s.SetThread(0, "Browser", "UI")
	s.SetThread(1, "AV", "W0")
	s.Instances = append(s.Instances, Instance{Scenario: "S1", TID: 0, Start: 0, End: t + 1})
	return s
}

func streamsEqual(a, b *Stream) bool {
	if a.ID != b.ID || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	if !reflect.DeepEqual(a.Instances, b.Instances) {
		return false
	}
	if !reflect.DeepEqual(a.Threads, b.Threads) {
		return false
	}
	if a.NumFrames() != b.NumFrames() || a.NumStacks() != b.NumStacks() {
		return false
	}
	for i := 0; i < a.NumFrames(); i++ {
		if a.Frame(FrameID(i)) != b.Frame(FrameID(i)) {
			return false
		}
	}
	for i := 0; i < a.NumStacks(); i++ {
		if !reflect.DeepEqual(a.Stack(StackID(i)), b.Stack(StackID(i))) {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	s := randomStream(1)
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !streamsEqual(s, got) {
		t.Error("binary round trip lost data")
	}
}

// TestBinaryRoundTripProperty quick-checks the round trip over many
// random streams.
func TestBinaryRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		s := randomStream(seed)
		var buf bytes.Buffer
		if err := s.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return streamsEqual(s, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := randomStream(2)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Stream
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !streamsEqual(s, &got) {
		t.Error("JSON round trip lost data")
	}
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	s := randomStream(3)
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"truncated header", good[:3]},
		{"truncated middle", good[:len(good)/2]},
		{"truncated tail", good[:len(good)-3]},
	}
	for _, tc := range cases {
		if _, err := ReadBinary(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: decoded successfully", tc.name)
		}
	}
}

func TestReadBinaryRejectsHugeLengths(t *testing.T) {
	// magic + version + a string length claiming 2^40 bytes.
	data := []byte("TSCP\x01\x00")
	data = append(data, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20) // huge uvarint
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("huge length accepted")
	}
}

func TestCorpusWriteToReadFrom(t *testing.T) {
	c := NewCorpus(randomStream(4), randomStream(5), randomStream(6))
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStreams() != 3 {
		t.Fatalf("got %d streams", got.NumStreams())
	}
	for i := range c.Streams {
		if !streamsEqual(c.Streams[i], got.Streams[i]) {
			t.Errorf("stream %d differs", i)
		}
	}
}

func TestCorpusDirRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	c := NewCorpus(randomStream(7), randomStream(8))
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStreams() != 2 {
		t.Fatalf("got %d streams", got.NumStreams())
	}
	for i := range c.Streams {
		if !streamsEqual(c.Streams[i], got.Streams[i]) {
			t.Errorf("stream %d differs", i)
		}
	}
}

func TestReadDirMissing(t *testing.T) {
	if _, err := ReadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing dir read successfully")
	}
}

func TestCorpusAccessors(t *testing.T) {
	a, b := randomStream(9), randomStream(10)
	c := NewCorpus(a, b)
	if c.NumInstances() != 2 {
		t.Errorf("NumInstances = %d", c.NumInstances())
	}
	if c.NumEvents() != len(a.Events)+len(b.Events) {
		t.Error("NumEvents wrong")
	}
	refs := c.InstancesOf("S1")
	if len(refs) != 2 {
		t.Fatalf("refs = %d", len(refs))
	}
	s, in := c.Instance(refs[1])
	if s != b || in.Scenario != "S1" {
		t.Error("Instance resolution wrong")
	}
	if len(c.InstancesOf("missing")) != 0 {
		t.Error("phantom instances")
	}
	scens := c.Scenarios()
	if len(scens) != 1 || scens[0].Name != "S1" || scens[0].Instances != 2 {
		t.Errorf("Scenarios = %v", scens)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

// TestReadBinaryNeverPanicsOnCorruption flips random bytes in valid
// encodings: decoding must either fail cleanly or produce a stream that
// validates — never panic or hang.
func TestReadBinaryNeverPanicsOnCorruption(t *testing.T) {
	s := randomStream(11)
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		data := make([]byte, len(good))
		copy(data, good)
		flips := 1 + r.Intn(4)
		for j := 0; j < flips; j++ {
			data[r.Intn(len(data))] ^= byte(1 + r.Intn(255))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on corrupted input (iteration %d): %v", i, p)
				}
			}()
			got, err := ReadBinary(bytes.NewReader(data))
			if err == nil {
				if verr := got.Validate(); verr != nil {
					t.Fatalf("decoder returned invalid stream: %v", verr)
				}
			}
		}()
	}
}
