package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"tracescope/internal/obs"
)

// corpus.index format
//
// Version 1 (legacy): one stream file name per line. Loading it yields
// no metadata, so a lazy open must decode every stream once to learn
// instance records.
//
// Version 2: a header line "TSINDEX 2" followed, per stream, by
//
//	s <file> <id> <events> <duration_us> <ninstances>
//	i <scenario> <tid> <start_us> <end_us>        (ninstances lines)
//
// where <file>, <id>, and <scenario> are Go-quoted strings. The index
// records everything instance enumeration, scenario listing, and
// fast/slow threshold classification need, so none of them decode event
// payloads.
//
// Version 3: the append-only form. Identical to version 2 except that
// every stream record carries a leading sequence number that must equal
// the record's zero-based position:
//
//	s <seq> <file> <id> <events> <duration_us> <ninstances>
//
// New streams are landed by appending one stream file plus its records
// to the index (Appender), never by rewriting earlier entries; the
// sequence numbers let Reload verify the append-only contract and
// detect a truncated or rewritten index instead of silently renumbering
// streams (EventIDs and InstanceRefs reference streams by index).
//
// Version 4: the columnar form. Index records are identical to version
// 3; the header version marks that stream files are TSC4 columnar
// containers (codec_v4.go) referencing the corpus-level corpus.intern
// frame/stack table, which sits next to the index and is itself
// append-only (Reload reads only its new tail).
//
// All four versions are read; WriteDir and Appender write version 4.

const (
	indexFile    = "corpus.index"
	indexMagic   = "TSINDEX"
	indexVersion = 4
)

// writeIndex writes a corpus index for the given stream metadata in the
// requested version (2, 3, or 4).
func writeIndex(w io.Writer, metas []StreamMeta, version int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d\n", indexMagic, version)
	for seq, m := range metas {
		var err error
		if version >= 3 {
			err = writeStreamRecord(bw, seq, m)
		} else {
			err = writeStreamRecordV2(bw, m)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeStreamRecord writes one version-3 stream record (the "s" line
// plus its "i" instance lines) to w.
func writeStreamRecord(w io.Writer, seq int, m StreamMeta) error {
	if _, err := fmt.Fprintf(w, "s %d %s %s %d %d %d\n",
		seq, strconv.Quote(m.File), strconv.Quote(m.ID),
		m.Events, int64(m.Duration), len(m.Instances)); err != nil {
		return err
	}
	for _, in := range m.Instances {
		if _, err := fmt.Fprintf(w, "i %s %d %d %d\n",
			strconv.Quote(in.Scenario), in.TID, int64(in.Start), int64(in.End)); err != nil {
			return err
		}
	}
	return nil
}

// parseIndex parses corpus.index contents (either version) and returns
// the per-stream metadata plus the format version. Version-1 metadata
// carries only File. Entries are validated: duplicate or path-escaping
// file names (absolute, or containing "." / ".." / empty elements) are
// rejected before any file is opened, and malformed input fails with
// ErrBadFormat rather than panicking or over-allocating.
func parseIndex(data string) ([]StreamMeta, int, error) {
	lines := splitLines(data)
	seen := make(map[string]bool)
	if len(lines) == 0 || !strings.HasPrefix(lines[0], indexMagic+" ") {
		// Version 1: plain file names.
		var metas []StreamMeta
		for _, line := range lines {
			if line == "" {
				continue
			}
			if err := checkIndexFile(line, seen); err != nil {
				return nil, 0, err
			}
			metas = append(metas, StreamMeta{File: line})
		}
		return metas, 1, nil
	}

	version, err := strconv.Atoi(strings.TrimPrefix(lines[0], indexMagic+" "))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: index header %q", ErrBadFormat, lines[0])
	}
	if version < 2 || version > indexVersion {
		// Name both the found and the supported versions so an operator
		// pointing an old binary at a newer corpus (or vice versa) sees
		// what to upgrade instead of a bare mismatch.
		return nil, 0, fmt.Errorf(
			"%w: found index version %d but this build supports versions 1 through %d; "+
				"upgrade tracescope or regenerate the corpus with a matching tracegen",
			ErrBadFormat, version, indexVersion)
	}

	var metas []StreamMeta
	i := 1
	for i < len(lines) {
		line := lines[i]
		i++
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "s ") {
			return nil, 0, fmt.Errorf("%w: index line %d: expected stream record, got %q", ErrBadFormat, i, line)
		}
		if len(metas) >= maxTableLen {
			return nil, 0, fmt.Errorf("%w: index stream count too large", ErrBadFormat)
		}
		m, ninst, err := parseStreamRecord(line[2:], version, len(metas))
		if err != nil {
			return nil, 0, fmt.Errorf("%w: index line %d: %v", ErrBadFormat, i, err)
		}
		if err := checkIndexFile(m.File, seen); err != nil {
			return nil, 0, err
		}
		m.Instances = make([]Instance, 0, prealloc(ninst))
		for j := 0; j < ninst; j++ {
			if i >= len(lines) {
				return nil, 0, fmt.Errorf("%w: index: truncated instance list for %s", ErrBadFormat, m.File)
			}
			line := lines[i]
			i++
			if !strings.HasPrefix(line, "i ") {
				return nil, 0, fmt.Errorf("%w: index line %d: expected instance record, got %q", ErrBadFormat, i, line)
			}
			in, err := parseInstanceRecord(line[2:])
			if err != nil {
				return nil, 0, fmt.Errorf("%w: index line %d: %v", ErrBadFormat, i, err)
			}
			m.Instances = append(m.Instances, in)
		}
		metas = append(metas, m)
	}
	return metas, version, nil
}

// parseStreamRecord parses the fields of one "s" line (after the tag).
// Version-3 records carry a leading sequence number which must equal
// seq, the record's zero-based position in the index.
func parseStreamRecord(s string, version, seq int) (StreamMeta, int, error) {
	var m StreamMeta
	var err error
	if version >= 3 {
		field, rest, _ := strings.Cut(s, " ")
		got, err := strconv.Atoi(field)
		if err != nil {
			return m, 0, fmt.Errorf("bad sequence number %q", field)
		}
		if got != seq {
			return m, 0, fmt.Errorf("sequence number %d at position %d (index truncated or rewritten?)", got, seq)
		}
		s = rest
	}
	if m.File, s, err = cutQuoted(s); err != nil {
		return m, 0, fmt.Errorf("stream file: %v", err)
	}
	if m.ID, s, err = cutQuoted(s); err != nil {
		return m, 0, fmt.Errorf("stream id: %v", err)
	}
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return m, 0, fmt.Errorf("want 3 numeric fields, got %d", len(fields))
	}
	events, err := strconv.Atoi(fields[0])
	if err != nil || events < 0 || events > maxTableLen {
		return m, 0, fmt.Errorf("bad event count %q", fields[0])
	}
	dur, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || dur < 0 {
		return m, 0, fmt.Errorf("bad duration %q", fields[1])
	}
	ninst, err := strconv.Atoi(fields[2])
	if err != nil || ninst < 0 || ninst > maxTableLen {
		return m, 0, fmt.Errorf("bad instance count %q", fields[2])
	}
	m.Events = events
	m.Duration = Duration(dur)
	return m, ninst, nil
}

// parseInstanceRecord parses the fields of one "i" line (after the tag).
func parseInstanceRecord(s string) (Instance, error) {
	var in Instance
	var err error
	if in.Scenario, s, err = cutQuoted(s); err != nil {
		return in, fmt.Errorf("instance scenario: %v", err)
	}
	if in.Scenario == "" {
		return in, fmt.Errorf("empty scenario name")
	}
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return in, fmt.Errorf("want 3 numeric fields, got %d", len(fields))
	}
	tid, err := strconv.ParseInt(fields[0], 10, 32)
	if err != nil {
		return in, fmt.Errorf("bad tid %q", fields[0])
	}
	start, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || start < 0 {
		return in, fmt.Errorf("bad start %q", fields[1])
	}
	end, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || end < start {
		return in, fmt.Errorf("bad end %q", fields[2])
	}
	in.TID = ThreadID(tid)
	in.Start = Time(start)
	in.End = Time(end)
	return in, nil
}

// cutQuoted splits a Go-quoted string off the front of s, returning its
// unquoted value and the rest (with one separating space consumed).
func cutQuoted(s string) (string, string, error) {
	q, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", fmt.Errorf("bad quoted string in %q", s)
	}
	v, err := strconv.Unquote(q)
	if err != nil {
		return "", "", fmt.Errorf("bad quoted string %q", q)
	}
	return v, strings.TrimPrefix(s[len(q):], " "), nil
}

// checkIndexFile validates one index file entry: non-empty, relative,
// confined to the corpus directory (no "." / ".." / empty path
// elements), and not a duplicate of an earlier entry.
func checkIndexFile(name string, seen map[string]bool) error {
	if name == "" {
		return fmt.Errorf("%w: index: empty file entry", ErrBadFormat)
	}
	norm := strings.ReplaceAll(name, `\`, "/")
	if filepath.IsAbs(name) || strings.HasPrefix(norm, "/") ||
		(len(name) >= 2 && name[1] == ':') {
		return fmt.Errorf("%w: index: absolute file entry %q", ErrBadFormat, name)
	}
	for _, part := range strings.Split(norm, "/") {
		if part == "" || part == "." || part == ".." {
			return fmt.Errorf("%w: index: path-escaping file entry %q", ErrBadFormat, name)
		}
	}
	if seen[name] {
		return fmt.Errorf("%w: index: duplicate file entry %q", ErrBadFormat, name)
	}
	seen[name] = true
	return nil
}

// DirSource is a lazy corpus over a directory written by WriteDir:
// stream and instance metadata come from the corpus.index, and Stream
// decodes one file on demand. It holds no decoded streams itself — wrap
// it in a CachedSource to bound repeated decoding.
//
// DirSource is safe for concurrent use: its metadata is immutable after
// OpenDir and Stream only reads files. The one exception is Reload,
// which appends metadata for newly landed streams; callers must
// serialize Reload against all other methods (the tracescoped daemon
// holds its state lock across it).
type DirSource struct {
	dir     string
	rich    bool // version >= 2: instance metadata present in the index
	version int
	metas   []StreamMeta
	rec     obs.Recorder

	// v4 state: the corpus intern table, the byte offset up to which
	// corpus.intern has been loaded (Reload reads only the new tail), and
	// the decode-buffer pool.
	intern     *InternTable
	internSize int64
	pool       *StreamPool

	numInstances int
	numEvents    int
	totalDur     Duration
}

// OpenDir opens a corpus directory lazily. For a version >= 2 index
// this reads only the index file (plus, from version 4, the
// corpus.intern frame/stack container); for a legacy version-1 index
// every stream is decoded once to recover the metadata (and then
// released).
func OpenDir(dir string) (*DirSource, error) {
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		return nil, err
	}
	metas, version, err := parseIndex(string(data))
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", indexFile, err)
	}
	d := &DirSource{dir: dir, rich: version >= 2, version: version, metas: metas, rec: obs.Nop}
	if version >= 4 {
		idata, err := os.ReadFile(filepath.Join(dir, internFile))
		if err != nil {
			return nil, fmt.Errorf("trace: version-%d corpus: %w", version, err)
		}
		it, err := readInternTable(idata)
		if err != nil {
			return nil, err
		}
		d.intern = it
		d.internSize = int64(len(idata))
		d.pool = NewStreamPool()
	}
	if !d.rich {
		for i := range d.metas {
			s, err := d.Stream(i)
			if err != nil {
				return nil, err
			}
			d.metas[i].ID = s.ID
			d.metas[i].Events = len(s.Events)
			d.metas[i].Duration = s.Duration()
			d.metas[i].Instances = s.Instances
		}
	}
	for _, m := range d.metas {
		d.numInstances += len(m.Instances)
		d.numEvents += m.Events
		d.totalDur += m.Duration
	}
	return d, nil
}

// Reload re-reads the corpus index and appends metadata for streams
// that landed since the source was opened (or last reloaded), without
// re-decoding — or even re-validating — any stream already known. It
// enforces the append-only contract of the version-3 index: the new
// index must contain every previously known stream record unchanged,
// in order, or Reload fails with ErrBadFormat (a rewritten index would
// silently renumber streams, and EventIDs and InstanceRefs reference
// streams by index).
//
// Reload returns the number of newly discovered streams. It mutates the
// source's metadata, so callers must serialize it against every other
// method; see the type comment.
func (d *DirSource) Reload() (int, error) {
	if !d.rich {
		return 0, fmt.Errorf("trace: %s: reload needs a version >= 2 index (legacy v1 corpora are not appendable)", indexFile)
	}
	// The intern table is append-only too; load its new tail before the
	// index so every stream the reloaded index names can resolve its
	// global IDs (the Appender lands intern records before index records).
	if d.version >= 4 {
		if err := d.reloadIntern(); err != nil {
			return 0, err
		}
	}
	data, err := os.ReadFile(filepath.Join(d.dir, indexFile))
	if err != nil {
		return 0, err
	}
	metas, version, err := parseIndex(string(data))
	if err != nil {
		return 0, fmt.Errorf("trace: %s: %w", indexFile, err)
	}
	if version < 2 {
		return 0, fmt.Errorf("trace: %s: %w: index downgraded to version %d during reload", indexFile, ErrBadFormat, version)
	}
	if len(metas) < len(d.metas) {
		return 0, fmt.Errorf("trace: %s: %w: index shrank from %d to %d streams (append-only contract broken)",
			indexFile, ErrBadFormat, len(d.metas), len(metas))
	}
	for i, old := range d.metas {
		if metas[i].File != old.File || metas[i].ID != old.ID ||
			metas[i].Events != old.Events || len(metas[i].Instances) != len(old.Instances) {
			return 0, fmt.Errorf("trace: %s: %w: stream record %d changed during reload (append-only contract broken)",
				indexFile, ErrBadFormat, i)
		}
	}
	fresh := metas[len(d.metas):]
	for _, m := range fresh {
		d.numInstances += len(m.Instances)
		d.numEvents += m.Events
		d.totalDur += m.Duration
	}
	d.metas = append(d.metas, fresh...)
	d.rec.Add("trace_index_reloads_total", 1)
	d.rec.Add("trace_index_streams_discovered_total", int64(len(fresh)))
	return len(fresh), nil
}

// Dir returns the backing corpus directory.
func (d *DirSource) Dir() string { return d.dir }

// SetRecorder routes the source's observability events — a "trace_decode"
// span per on-demand stream decode plus decoded/error counters — to r.
// Call before concurrent use; nil restores the no-op recorder.
func (d *DirSource) SetRecorder(r obs.Recorder) { d.rec = obs.OrNop(r) }

// NumStreams returns the number of streams.
func (d *DirSource) NumStreams() int { return len(d.metas) }

// NumInstances returns the total number of scenario instances recorded.
func (d *DirSource) NumInstances() int { return d.numInstances }

// NumEvents returns the total number of events across all streams.
func (d *DirSource) NumEvents() int { return d.numEvents }

// TotalDuration sums the time spans of all streams.
func (d *DirSource) TotalDuration() Duration { return d.totalDur }

// Scenarios returns the sorted scenario names with instance counts,
// computed from index metadata alone.
func (d *DirSource) Scenarios() []ScenarioCount { return scenarioCounts(d.metas) }

// InstancesOf returns references to every instance of the named scenario
// ("" selects all), computed from index metadata alone.
func (d *DirSource) InstancesOf(scenario string) []InstanceRef {
	return instanceRefs(d.metas, scenario)
}

// InstanceMeta resolves a reference from index metadata alone.
func (d *DirSource) InstanceMeta(ref InstanceRef) Instance {
	return d.metas[ref.Stream].Instances[ref.Instance]
}

// StreamMeta returns stream i's index metadata. The Instances slice is
// shared; treat as read-only.
func (d *DirSource) StreamMeta(i int) StreamMeta { return d.metas[i] }

// Stream decodes stream i from its backing file. Every call decodes
// afresh; wrap the source in a CachedSource to bound re-decoding.
func (d *DirSource) Stream(i int) (*Stream, error) {
	if i < 0 || i >= len(d.metas) {
		return nil, fmt.Errorf("trace: stream %d out of range (%d streams)", i, len(d.metas))
	}
	sp := d.rec.Start("trace_decode")
	s, err := d.decode(i)
	sp.End()
	if err != nil {
		d.rec.Add("trace_decode_errors_total", 1)
		return nil, err
	}
	d.rec.Add("trace_streams_decoded_total", 1)
	return s, nil
}

// decode reads and decodes stream i's backing file.
func (d *DirSource) decode(i int) (*Stream, error) {
	if d.version >= 4 {
		return d.decodeV4(i)
	}
	name := d.metas[i].File
	f, err := os.Open(filepath.Join(d.dir, filepath.FromSlash(name)))
	if err != nil {
		return nil, err
	}
	s, err := ReadBinary(f)
	if cerr := f.Close(); err == nil {
		// A close error on a fully decoded stream still means the
		// underlying read may have been short; surface it.
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("trace: reading %s: %w", name, err)
	}
	// A stale index whose instance table disagrees with the stream would
	// let InstanceRefs index out of range downstream; fail loudly here.
	if d.rich && len(s.Instances) != len(d.metas[i].Instances) {
		return nil, fmt.Errorf("%w: %s: stream has %d instances but index records %d",
			ErrBadFormat, name, len(s.Instances), len(d.metas[i].Instances))
	}
	return s, nil
}

// decodeV4 decodes stream i's columnar file into pooled buffers. The
// buffer set rides on the returned stream (Stream.bufs) and comes back
// via Recycle; decode failures return it to the pool immediately.
func (d *DirSource) decodeV4(i int) (*Stream, error) {
	name := d.metas[i].File
	b := d.pool.get()
	s, err := d.readFileV4(name, b)
	if err != nil {
		d.pool.put(b)
		return nil, fmt.Errorf("trace: reading %s: %w", name, err)
	}
	if len(s.Instances) != len(d.metas[i].Instances) {
		d.pool.put(b)
		return nil, fmt.Errorf("%w: %s: stream has %d instances but index records %d",
			ErrBadFormat, name, len(s.Instances), len(d.metas[i].Instances))
	}
	return s, nil
}

// readFileV4 reads one stream file into b.raw and decodes it in place.
func (d *DirSource) readFileV4(name string, b *decodeBufs) (*Stream, error) {
	f, err := os.Open(filepath.Join(d.dir, filepath.FromSlash(name)))
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err == nil {
		size := int(st.Size())
		if cap(b.raw) < size {
			b.raw = make([]byte, size)
		}
		b.raw = b.raw[:size]
		_, err = io.ReadFull(f, b.raw)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return readBinaryV4(b.raw, d.intern, b)
}

// reloadIntern reads the corpus.intern records appended since the last
// load. A shrunken file breaks the append-only contract.
func (d *DirSource) reloadIntern() (err error) {
	path := filepath.Join(d.dir, internFile)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < d.internSize {
		return fmt.Errorf("trace: %s: %w: intern table shrank from %d to %d bytes (append-only contract broken)",
			internFile, ErrBadFormat, d.internSize, st.Size())
	}
	if st.Size() == d.internSize {
		return nil
	}
	tail := make([]byte, st.Size()-d.internSize)
	if _, err := f.ReadAt(tail, d.internSize); err != nil {
		return err
	}
	if err := d.intern.addRecords(tail); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadFormat, internFile, err)
	}
	d.internSize = st.Size()
	return nil
}

// Version returns the corpus's on-disk index version.
func (d *DirSource) Version() int { return d.version }

// Intern returns the corpus-level intern table, or nil for corpora
// before format v4. Read-only between Reloads.
func (d *DirSource) Intern() *InternTable { return d.intern }

// Recycle returns a stream previously decoded by this source to its
// buffer pool. Callers must guarantee no references to the stream
// remain (see StreamPool); streams from pre-v4 corpora are ignored.
func (d *DirSource) Recycle(s *Stream) {
	if d.pool != nil {
		d.pool.Recycle(s)
	}
}

// PoolStats reports decode-buffer pool counters (zero for pre-v4
// corpora).
func (d *DirSource) PoolStats() StreamPoolStats {
	if d.pool == nil {
		return StreamPoolStats{}
	}
	return d.pool.Stats()
}

// Materialize decodes every stream into an in-memory Corpus (the eager
// ReadDir behaviour), for consumers that need resident streams.
func (d *DirSource) Materialize() (*Corpus, error) {
	c := &Corpus{}
	for i := range d.metas {
		s, err := d.Stream(i)
		if err != nil {
			return nil, err
		}
		c.Add(s)
	}
	return c, nil
}
