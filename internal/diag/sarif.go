// SARIF 2.1.0 rendering — the interchange format code-hosting UIs
// ingest to annotate pull requests with static-analysis results. Only
// the slice of the (large) SARIF schema the findings need is modelled;
// the output is deterministic byte-for-byte given the same diagnostics,
// like every other artifact this module emits.

package diag

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// sarifLog is the document root.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as one SARIF 2.1.0 run of the
// named driver. Rules are derived from the analyzers that actually
// reported, described by ruleDocs (missing entries get an empty
// description), sorted by id; results keep the diagnostics'
// deterministic order. Each finding's level comes from its Severity,
// with the zero value mapping to "warning".
func WriteSARIF(w io.Writer, tool string, diags []Diagnostic, ruleDocs map[string]string) error {
	seen := make(map[string]bool)
	var ruleIDs []string
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if !seen[d.Analyzer] {
			seen[d.Analyzer] = true
			ruleIDs = append(ruleIDs, d.Analyzer)
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   d.Severity.Level(),
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	sort.Strings(ruleIDs)
	rules := make([]sarifRule, 0, len(ruleIDs))
	for _, id := range ruleIDs {
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: ruleDocs[id]},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: tool, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
