// Package diag is the shared diagnostics layer behind tracescope's
// static verifiers: tracelint (Go-source determinism analysis) and
// tracevet (corpus/trace semantic verification). Both tools report the
// same shape — a rule name, a position, a message, optional
// machine-applicable fixes — and share the human, JSON, and SARIF 2.1.0
// renderings plus the 0/1/2 exit-code convention (0 clean, 1 findings,
// 2 operational errors). Keeping one Diagnostic type means one sort
// order, one suppression-coverage rule, and byte-identical artifacts
// from either tool given the same findings.
package diag

import (
	"fmt"
	"go/token"
	"sort"
)

// Severity ranks a finding. The zero value renders as "warning" —
// tracelint predates severities and treats every finding as a warning,
// so the default preserves its output byte-for-byte. tracevet uses the
// full scale: Error for corruption and invariant violations, Warning
// for suspicious-but-analyzable states, Note for informational
// classifications (e.g. a recoverable append-crash tail).
type Severity string

const (
	// SevError marks corruption or a violated invariant: the artifact
	// must not be trusted by the analysis layer.
	SevError Severity = "error"
	// SevWarning marks a suspicious state the analysis layer tolerates.
	SevWarning Severity = "warning"
	// SevNote marks an informational finding.
	SevNote Severity = "note"
)

// Level returns the SARIF level string, mapping the zero value to
// "warning" (the historical tracelint behaviour).
func (s Severity) Level() string {
	if s == "" {
		return string(SevWarning)
	}
	return string(s)
}

// Diagnostic is one finding at one position. For source-code tools the
// position is a real token.Position; corpus verifiers reuse the same
// shape with Filename = the corpus artifact (corpus.index, a stream
// file) and Line = a 1-based record or event ordinal, so every
// downstream writer (human, JSON, SARIF) works unchanged.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Severity ranks the finding; the zero value means warning.
	Severity Severity
	// Fixes holds machine-applicable rewrites for the finding, empty
	// when the fix needs human judgment.
	Fixes []Fix
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Sort orders findings by file, line, column, analyzer, and message —
// the verifiers' own output must be deterministic. Severity is not a
// sort key: it is presentation, and excluding it keeps the order
// identical to the pre-severity tracelint contract.
func Sort(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ExitCode maps a finished run onto the shared CLI convention: 2 when
// the run itself failed (parse/usage/IO), 1 when it completed with
// findings, 0 when clean.
func ExitCode(findings int, opFailed bool) int {
	switch {
	case opFailed:
		return 2
	case findings > 0:
		return 1
	}
	return 0
}
