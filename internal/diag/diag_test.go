package diag

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func mk(file string, line int, analyzer, msg string, sev Severity) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
		Severity: sev,
	}
}

// TestSeverityLevel pins the zero-value-means-warning contract that
// keeps tracelint's SARIF output byte-identical to its pre-diag form.
func TestSeverityLevel(t *testing.T) {
	cases := []struct {
		sev  Severity
		want string
	}{
		{"", "warning"},
		{SevWarning, "warning"},
		{SevError, "error"},
		{SevNote, "note"},
	}
	for _, c := range cases {
		if got := c.sev.Level(); got != c.want {
			t.Errorf("Severity(%q).Level() = %q, want %q", string(c.sev), got, c.want)
		}
	}
}

func TestExitCode(t *testing.T) {
	if got := ExitCode(0, false); got != 0 {
		t.Errorf("clean run: got %d, want 0", got)
	}
	if got := ExitCode(3, false); got != 1 {
		t.Errorf("findings: got %d, want 1", got)
	}
	if got := ExitCode(3, true); got != 2 {
		t.Errorf("operational failure wins: got %d, want 2", got)
	}
}

// TestSortIgnoresSeverity: severity is presentation, not a sort key —
// two findings differing only in severity keep their input order.
func TestSortIgnoresSeverity(t *testing.T) {
	a := mk("a", 1, "x", "m", SevError)
	b := mk("a", 1, "x", "m", SevNote)
	in := []Diagnostic{a, b}
	Sort(in)
	if in[0].Severity != SevError || in[1].Severity != SevNote {
		t.Fatalf("stable order not kept: %v", in)
	}
}

// TestWriteSARIFSeverities: each finding's level comes from its own
// severity, and the rule table is sorted with docs applied.
func TestWriteSARIFSeverities(t *testing.T) {
	diags := []Diagnostic{
		mk("corpus.index", 3, "index-seq", "gap", SevError),
		mk("stream-00001.tsc4", 1, "tail-truncated", "torn tail", SevNote),
		mk("stream-00001.tsc4", 2, "wait-pair", "orphan wait", ""),
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "tracevet", diags, map[string]string{
		"index-seq": "index sequence continuity",
	}); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "tracevet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	wantRules := []string{"index-seq", "tail-truncated", "wait-pair"}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID != wantRules[i] {
			t.Errorf("rule[%d] = %q, want %q", i, r.ID, wantRules[i])
		}
	}
	wantLevels := []string{"error", "note", "warning"}
	for i, r := range run.Results {
		if r.Level != wantLevels[i] {
			t.Errorf("result[%d].level = %q, want %q", i, r.Level, wantLevels[i])
		}
	}
}

// TestFindingsSeverityGate: tracelint's artifact must not grow a
// severity field; tracevet's must carry one.
func TestFindingsSeverityGate(t *testing.T) {
	diags := []Diagnostic{mk("a", 1, "x", "m", SevError)}
	var without, with bytes.Buffer
	if err := WriteJSON(&without, diags, false); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&with, diags, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(without.String(), "severity") {
		t.Errorf("withSeverity=false leaked a severity field: %s", without.String())
	}
	if !strings.Contains(with.String(), `"severity": "error"`) {
		t.Errorf("withSeverity=true missing severity: %s", with.String())
	}
}
