// The -fix engine: analyzers attach byte-range text edits to
// diagnostics, and ApplyFixes materialises them against a file's
// source. Only rewrites that cannot change behaviour ship a fix;
// anything needing judgment stays a diagnostic.

package diag

import (
	"sort"
	"strings"
)

// Fix is one textual edit: replace src[Start:End] with Text. An
// insertion has Start == End. When IndentNewlines is set, every newline
// in Text is continued with the indentation of the line holding Start,
// so inserted statements land at the surrounding block's depth.
type Fix struct {
	Start, End     int
	Text           string
	IndentNewlines bool
}

// ApplyFixes applies every fix carried by the diagnostics to src (the
// contents of one file — the caller groups diagnostics per file) and
// returns the rewritten source plus the number of edits applied.
// Invalid (out-of-range) and overlapping edits are skipped rather than
// guessed at: a skipped fix leaves its diagnostic for the next run.
func ApplyFixes(src []byte, diags []Diagnostic) ([]byte, int) {
	var fixes []Fix
	for _, d := range diags {
		fixes = append(fixes, d.Fixes...)
	}
	// Apply back-to-front so earlier offsets stay valid.
	sort.SliceStable(fixes, func(i, j int) bool { return fixes[i].Start > fixes[j].Start })
	applied := 0
	lastStart := len(src) + 1
	for _, fx := range fixes {
		if fx.Start < 0 || fx.End > len(src) || fx.Start > fx.End || fx.End > lastStart {
			continue
		}
		text := fx.Text
		if fx.IndentNewlines {
			text = strings.ReplaceAll(text, "\n", "\n"+LineIndent(src, fx.Start))
		}
		out := make([]byte, 0, len(src)+len(text)-(fx.End-fx.Start))
		out = append(out, src[:fx.Start]...)
		out = append(out, text...)
		out = append(out, src[fx.End:]...)
		src = out
		lastStart = fx.Start
		applied++
	}
	return src, applied
}

// LineIndent returns the leading whitespace of the line containing the
// byte offset.
func LineIndent(src []byte, off int) string {
	start := off
	for start > 0 && src[start-1] != '\n' {
		start--
	}
	end := start
	for end < len(src) && (src[end] == ' ' || src[end] == '\t') {
		end++
	}
	return string(src[start:end])
}
