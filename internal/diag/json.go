// Machine-readable findings report — the JSON array CI uploads as a
// build artifact. The shape predates this package (tracelint's -json
// output); the optional severity field is omitted when empty so
// tracelint's artifact stays byte-identical.

package diag

import (
	"encoding/json"
	"io"
)

// Finding is the JSON shape of one diagnostic.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Severity string `json:"severity,omitempty"`
	Fixable  bool   `json:"fixable,omitempty"`
}

// Findings converts diagnostics to the JSON shape, preserving order.
// When withSeverity is set each finding carries its resolved level;
// tracelint passes false to keep its historical artifact bytes.
func Findings(diags []Diagnostic, withSeverity bool) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		f := Finding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message, Fixable: len(d.Fixes) > 0,
		}
		if withSeverity {
			f.Severity = d.Severity.Level()
		}
		out = append(out, f)
	}
	return out
}

// WriteJSON renders the diagnostics as a 2-space-indented JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic, withSeverity bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Findings(diags, withSeverity))
}
