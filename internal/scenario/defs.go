// Package scenario defines the application scenarios of the paper's
// evaluation (Table 1), the background workloads that share driver locks
// with them, and the corpus generator that turns them into ETW-shaped
// trace streams via the sim kernel.
//
// Each scenario has developer thresholds Tfast and Tslow, as §4.2.1
// requires: instances faster than Tfast form the fast contrast class and
// instances slower than Tslow form the slow class.
package scenario

import (
	"sort"

	"tracescope/internal/drivers"
	"tracescope/internal/sim"
	"tracescope/internal/stats"
	"tracescope/internal/trace"
)

// Env carries the per-instance generation context handed to scenario
// builders: the machine's driver stack, a deterministic random source, and
// the episode parameters that shape contention.
type Env struct {
	Stack *drivers.Stack
	Rng   *stats.Rand
	// Bucket selects which file-table / MDU lock bucket the instance
	// touches; instances in the same episode share a bucket and so
	// contend (§2.2).
	Bucket int
	// AppLock, when non-empty, names an application-level lock (profile
	// store, document state, ...) the instance takes around its
	// driver-mediated section. Waits on it carry no driver frames, so
	// the holder's driver waits surface as top-level driver waits in
	// the waiters' Wait Graphs too — the event overlap across instances
	// that §2.1 identifies as the manifestation of cost propagation and
	// that Dwaitdist measures.
	AppLock string
	// Severity >= 1 stretches driver work (contention storms).
	Severity float64
	// NetStall >= 1 stretches network tails.
	NetStall float64
	// HardFault triggers a paged-memory hard fault in graphics paths
	// (§5.2.4).
	HardFault bool
}

func (e *Env) burnMS(lo, hi float64) sim.Op {
	return sim.Burn(trace.Duration(e.Rng.Uniform(lo, hi) * 1000))
}

// guard wraps ops in the instance's application-level lock, when present.
func (e *Env) guard(ops ...sim.Op) []sim.Op {
	if e.AppLock == "" {
		return ops
	}
	return sim.WithLock(e.AppLock, ops...)
}

// Def describes one scenario: its contrast-class thresholds, the process
// that initiates it, and the builder producing the initiating thread's
// program.
type Def struct {
	Name    string
	Process string
	// EntryFrame is the "module!function" frame the initiating thread
	// carries for the scenario's whole execution; instance detection
	// keys on it (internal/detect).
	EntryFrame string
	// Tfast is the upper bound of normal performance; Tslow the lower
	// bound of degradation (§4.2.1).
	Tfast trace.Duration
	Tslow trace.Duration
	Build func(e *Env) []sim.Op
}

// The eight selected scenarios of Table 1.
const (
	AppAccessControl   = "AppAccessControl"
	AppNonResponsive   = "AppNonResponsive"
	BrowserFrameCreate = "BrowserFrameCreate"
	BrowserTabClose    = "BrowserTabClose"
	BrowserTabCreate   = "BrowserTabCreate"
	BrowserTabSwitch   = "BrowserTabSwitch"
	MenuDisplay        = "MenuDisplay"
	WebPageNavigation  = "WebPageNavigation"
)

// Additional foreground scenarios. The paper's corpus spans 1,364
// scenarios of which eight are selected for causality analysis (§5.2);
// these extras populate the same machines, contend the same locks, and
// count toward the headline impact numbers without being analysed
// individually.
const (
	FileSave      = "FileSave"
	AppLaunch     = "AppLaunch"
	SearchQuery   = "SearchQuery"
	DocumentPrint = "DocumentPrint"
)

// Background scenario names; their instances populate the corpus alongside
// the selected eight and create the cross-scenario propagation the impact
// analysis measures.
const (
	AVScanBurst   = "AVScanBurst"
	ConfigSync    = "ConfigSync"
	SystemIndexer = "SystemIndexer"
	TelemetrySend = "TelemetrySend"
)

// ms builds a Duration from milliseconds.
func ms(v float64) trace.Duration { return trace.Duration(v * 1000) }

// catalog returns the full scenario catalogue keyed by name.
func catalog() map[string]Def {
	defs := []Def{
		{
			Name: BrowserTabCreate, Process: "Browser",
			EntryFrame: "Browser!TabCreate",
			Tfast:      ms(300), Tslow: ms(500),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(90, 210)}
				var files []sim.Op
				opens := 2 + e.Rng.Intn(2)
				for i := 0; i < opens; i++ {
					files = append(files, e.Stack.FileOpen(e.Bucket, 1, e.Severity, e.Severity)...)
				}
				files = append(files, e.Stack.NetworkFetch(e.NetStall))
				if e.Rng.Bool(0.5) {
					files = append(files, e.Stack.NetworkFetch(e.NetStall))
				}
				body = append(body, e.guard(files...)...)
				body = append(body, e.Stack.ServiceQuery(e.Bucket, e.Severity, e.Severity))
				body = append(body, e.burnMS(90, 220)) // layout + paint
				return sim.Seq(sim.Invoke("Browser!TabCreate", body...))
			},
		},
		{
			Name: BrowserTabSwitch, Process: "Browser",
			EntryFrame: "Browser!TabSwitch",
			Tfast:      ms(180), Tslow: ms(240),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(40, 90)}
				var inner []sim.Op
				inner = append(inner,
					e.Stack.CacheLookup(e.Bucket, 0.6, e.Severity, e.Severity),
					e.Stack.GPUAcquire(ms(e.Rng.Uniform(3, 10)), e.HardFault && e.Rng.Bool(0.3)),
				)
				if e.Rng.Bool(0.4) {
					inner = append(inner, e.Stack.CacheLookup(e.Bucket, 0.6, e.Severity, e.Severity))
				}
				body = append(body, e.guard(inner...)...)
				body = append(body, e.Stack.ServiceQuery(e.Bucket, e.Severity, e.Severity))
				body = append(body, e.burnMS(45, 105))
				return sim.Seq(sim.Invoke("Browser!TabSwitch", body...))
			},
		},
		{
			Name: BrowserTabClose, Process: "Browser",
			EntryFrame: "Browser!TabClose",
			Tfast:      ms(120), Tslow: ms(160),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(30, 75)}
				var inner []sim.Op
				inner = append(inner, e.Stack.BackupScan(e.Bucket, e.Severity))
				inner = append(inner, e.Stack.FileOpen(e.Bucket, 1, e.Severity, e.Severity)...)
				body = append(body, e.guard(inner...)...)
				body = append(body, e.burnMS(30, 70))
				return sim.Seq(sim.Invoke("Browser!TabClose", body...))
			},
		},
		{
			Name: BrowserFrameCreate, Process: "Browser",
			EntryFrame: "Browser!FrameCreate",
			Tfast:      ms(330), Tslow: ms(490),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(70, 165)}
				var inner []sim.Op
				for i := 0; i < 2; i++ {
					inner = append(inner, e.Stack.FileOpen(e.Bucket, 1, e.Severity, e.Severity)...)
				}
				inner = append(inner, e.Stack.NetworkFetch(e.NetStall))
				body = append(body, e.guard(inner...)...)
				body = append(body, e.Stack.ServiceQuery(e.Bucket, e.Severity, e.Severity))
				body = append(body, e.burnMS(75, 165))
				return sim.Seq(sim.Invoke("Browser!FrameCreate", body...))
			},
		},
		{
			Name: WebPageNavigation, Process: "Browser",
			EntryFrame: "Browser!Navigate",
			Tfast:      ms(540), Tslow: ms(750),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(75, 180)}
				var inner []sim.Op
				fetches := 2 + e.Rng.Intn(2)
				for i := 0; i < fetches; i++ {
					inner = append(inner, e.Stack.NetworkFetch(e.NetStall))
				}
				inner = append(inner, e.Stack.CacheLookup(e.Bucket, 0.5, e.Severity, e.Severity))
				inner = append(inner, e.Stack.FileOpen(e.Bucket, 1, e.Severity, e.Severity)...)
				body = append(body, e.guard(inner...)...)
				body = append(body, e.Stack.ServiceQuery(e.Bucket, e.Severity, e.Severity))
				body = append(body, e.burnMS(180, 390)) // parse + layout
				return sim.Seq(sim.Invoke("Browser!Navigate", body...))
			},
		},
		{
			Name: MenuDisplay, Process: "Shell",
			EntryFrame: "Shell!MenuDisplay",
			Tfast:      ms(145), Tslow: ms(240),
			Build: func(e *Env) []sim.Op {
				// Menus rendering items from remote servers: network-bound
				// (Table 4: 7/10 top patterns are network drivers here).
				// Remote menu items ride slow, far-away links: the network
				// tail is twice as heavy here, and file activity is light.
				body := []sim.Op{e.burnMS(25, 55), e.Stack.MouseQuery()}
				var inner []sim.Op
				inner = append(inner, e.Stack.NetworkFetch(e.NetStall*2))
				if e.Rng.Bool(0.8) {
					inner = append(inner, e.Stack.NetworkFetch(e.NetStall*2))
				}
				if e.Rng.Bool(0.2) {
					inner = append(inner, e.Stack.CacheLookup(e.Bucket, 0.7, e.Severity, e.Severity))
				}
				body = append(body, e.guard(inner...)...)
				body = append(body, e.burnMS(25, 55))
				return sim.Seq(sim.Invoke("Shell!MenuDisplay", body...))
			},
		},
		{
			Name: AppAccessControl, Process: "App",
			EntryFrame: "App!AccessCheck",
			Tfast:      ms(110), Tslow: ms(185),
			Build: func(e *Env) []sim.Op {
				// Access checks walk security descriptors on disk through
				// the filter stack: file-system + filter heavy (Table 4).
				body := []sim.Op{e.burnMS(25, 60)}
				var inner []sim.Op
				checks := 2 + e.Rng.Intn(2)
				for i := 0; i < checks; i++ {
					inner = append(inner, e.Stack.AVIntercept(e.Severity))
					inner = append(inner, e.Stack.QueryFileTable(e.Bucket, 1, e.Severity, e.Severity))
				}
				body = append(body, e.guard(inner...)...)
				body = append(body, e.burnMS(25, 60))
				return sim.Seq(sim.Invoke("App!AccessCheck", body...))
			},
		},
		{
			Name: AppNonResponsive, Process: "App",
			EntryFrame: "App!MessageLoop",
			Tfast:      ms(570), Tslow: ms(700),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(150, 360)}
				var inner []sim.Op
				inner = append(inner, e.Stack.GPUAcquire(ms(e.Rng.Uniform(8, 25)), e.HardFault))
				inner = append(inner, e.Stack.FileOpen(e.Bucket, 1, e.Severity, e.Severity)...)
				body = append(body, e.guard(inner...)...)
				if e.Rng.Bool(0.3) {
					body = append(body, e.Stack.ACPIQuery())
				}
				body = append(body, e.burnMS(150, 330))
				return sim.Seq(sim.Invoke("App!MessageLoop", body...))
			},
		},
	}

	extras := []Def{
		{
			Name: FileSave, Process: "Office",
			EntryFrame: "Office!SaveDocument",
			Tfast:      ms(120), Tslow: ms(260),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(20, 60)}
				var inner []sim.Op
				inner = append(inner, e.Stack.BackupScan(e.Bucket, e.Severity))
				inner = append(inner, e.Stack.FileOpen(e.Bucket, 1, e.Severity, e.Severity)...)
				body = append(body, e.guard(inner...)...)
				body = append(body, e.burnMS(10, 30))
				return sim.Seq(sim.Invoke("Office!SaveDocument", body...))
			},
		},
		{
			Name: AppLaunch, Process: "Office",
			EntryFrame: "Office!Launch",
			Tfast:      ms(400), Tslow: ms(900),
			Build: func(e *Env) []sim.Op {
				// Cold starts read many binaries and settings and warm
				// the GPU pipeline.
				body := []sim.Op{e.burnMS(60, 160)}
				var inner []sim.Op
				for i := 0; i < 3; i++ {
					inner = append(inner, e.Stack.FileOpen(e.Bucket, 1, e.Severity, e.Severity)...)
				}
				body = append(body, e.guard(inner...)...)
				body = append(body, e.Stack.GPUAcquire(ms(e.Rng.Uniform(5, 15)), false))
				body = append(body, e.Stack.ServiceQuery(e.Bucket, e.Severity, e.Severity))
				body = append(body, e.burnMS(80, 200))
				return sim.Seq(sim.Invoke("Office!Launch", body...))
			},
		},
		{
			Name: SearchQuery, Process: "Search",
			EntryFrame: "Search!Query",
			Tfast:      ms(150), Tslow: ms(350),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(15, 45)}
				var inner []sim.Op
				inner = append(inner, e.Stack.CacheLookup(e.Bucket, 0.4, e.Severity, e.Severity))
				inner = append(inner, e.Stack.QueryFileTable(e.Bucket, 1, e.Severity, e.Severity))
				body = append(body, e.guard(inner...)...)
				if e.Rng.Bool(0.4) {
					body = append(body, e.Stack.NetworkFetch(e.NetStall))
				}
				body = append(body, e.burnMS(15, 45))
				return sim.Seq(sim.Invoke("Search!Query", body...))
			},
		},
		{
			Name: DocumentPrint, Process: "Office",
			EntryFrame: "Office!Print",
			Tfast:      ms(300), Tslow: ms(700),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(40, 110)}
				var inner []sim.Op
				inner = append(inner, e.Stack.FileOpen(e.Bucket, 1, e.Severity, e.Severity)...)
				body = append(body, e.guard(inner...)...)
				// Spooling to the print device.
				body = append(body, sim.Invoke("Office!Spool",
					sim.DeviceOp{Device: "printer", D: ms(e.Rng.Uniform(20, 90))}))
				body = append(body, e.burnMS(20, 50))
				return sim.Seq(sim.Invoke("Office!Print", body...))
			},
		},
	}

	backgrounds := []Def{
		{
			Name: AVScanBurst, Process: "AV",
			EntryFrame: "AV!ScanBurst",
			Tfast:      ms(400), Tslow: ms(1200),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(10, 25)}
				files := 2 + e.Rng.Intn(3)
				for i := 0; i < files; i++ {
					body = append(body, e.Stack.AVIntercept(e.Severity*1.5))
					body = append(body, e.Stack.AcquireMDU(e.Bucket, 1, e.Severity, e.Severity))
				}
				body = append(body, e.burnMS(10, 30))
				return sim.Seq(sim.Invoke("AV!ScanBurst", body...))
			},
		},
		{
			Name: ConfigSync, Process: "CM",
			EntryFrame: "CM!SyncSettings",
			Tfast:      ms(300), Tslow: ms(900),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(10, 25)}
				for i := 0; i < 2; i++ {
					body = append(body, e.Stack.AcquireMDU(e.Bucket, 1+e.Rng.Intn(2), e.Severity, e.Severity))
				}
				if e.Rng.Bool(0.5) {
					body = append(body, e.Stack.NetworkFetch(e.NetStall))
				}
				body = append(body, e.Stack.ServiceQuery(e.Bucket, e.Severity, e.Severity))
				body = append(body, e.burnMS(10, 25))
				return sim.Seq(sim.Invoke("CM!SyncSettings", body...))
			},
		},
		{
			Name: SystemIndexer, Process: "Indexer",
			EntryFrame: "Indexer!Crawl",
			Tfast:      ms(500), Tslow: ms(1500),
			Build: func(e *Env) []sim.Op {
				body := []sim.Op{e.burnMS(25, 55)}
				files := 2 + e.Rng.Intn(4)
				for i := 0; i < files; i++ {
					body = append(body, e.Stack.QueryFileTable(e.Bucket, 1, e.Severity, e.Severity))
				}
				body = append(body, e.burnMS(25, 55))
				return sim.Seq(sim.Invoke("Indexer!Crawl", body...))
			},
		},
		{
			Name: TelemetrySend, Process: "Telemetry",
			EntryFrame: "Telemetry!Upload",
			Tfast:      ms(200), Tslow: ms(800),
			Build: func(e *Env) []sim.Op {
				return sim.Seq(sim.Invoke("Telemetry!Upload",
					e.burnMS(8, 20),
					e.Stack.NetworkFetch(e.NetStall),
					e.burnMS(4, 12),
				))
			},
		},
	}

	all := append(defs, extras...)
	all = append(all, backgrounds...)
	out := make(map[string]Def, len(all))
	for _, d := range all {
		out[d.Name] = d
	}
	return out
}

var defs = catalog()

// Lookup returns the definition of a named scenario.
func Lookup(name string) (Def, bool) {
	d, ok := defs[name]
	return d, ok
}

// Selected returns the eight selected scenario names in Table 1 order.
func Selected() []string {
	return []string{
		AppAccessControl, AppNonResponsive, BrowserFrameCreate,
		BrowserTabClose, BrowserTabCreate, BrowserTabSwitch,
		MenuDisplay, WebPageNavigation,
	}
}

// Extras returns the additional (non-selected) foreground scenarios.
func Extras() []string {
	return []string{FileSave, AppLaunch, SearchQuery, DocumentPrint}
}

// Backgrounds returns the background scenario names.
func Backgrounds() []string {
	return []string{AVScanBurst, ConfigSync, SystemIndexer, TelemetrySend}
}

// All returns every scenario name, sorted.
func All() []string {
	names := make([]string, 0, len(defs))
	for n := range defs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EntryFrame returns the scenario's entry-point frame.
func EntryFrame(name string) (string, bool) {
	d, ok := defs[name]
	if !ok {
		return "", false
	}
	return d.EntryFrame, true
}

// Thresholds returns (Tfast, Tslow) for a scenario; ok is false for
// unknown names.
func Thresholds(name string) (tfast, tslow trace.Duration, ok bool) {
	d, found := defs[name]
	if !found {
		return 0, 0, false
	}
	return d.Tfast, d.Tslow, true
}
