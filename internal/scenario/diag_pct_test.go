package scenario

import (
	"testing"

	"tracescope/internal/stats"
)

func TestDiagPercentiles(t *testing.T) {
	c := Generate(Config{Seed: 1, Streams: 32, Episodes: 12})
	for _, name := range Selected() {
		var ds []float64
		for _, s := range c.Streams {
			for _, in := range s.Instances {
				if in.Scenario == name {
					ds = append(ds, in.Duration().Milliseconds())
				}
			}
		}
		t.Logf("%-20s n=%4d p35=%6.0f p65=%6.0f", name, len(ds),
			stats.Percentile(ds, 35), stats.Percentile(ds, 65))
	}
}
