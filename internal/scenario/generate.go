package scenario

import (
	"fmt"
	"runtime"
	"sync"

	"tracescope/internal/drivers"
	"tracescope/internal/sim"
	"tracescope/internal/stats"
	"tracescope/internal/trace"
)

// Config parameterises corpus generation. The zero value is usable: it
// yields the default laptop-scale corpus documented in EXPERIMENTS.md.
type Config struct {
	// Seed drives all randomness; equal seeds yield identical corpora.
	Seed int64
	// Streams is the number of trace streams (machines). Zero means 120.
	Streams int
	// Episodes is the number of activity episodes per stream. Zero
	// means 18.
	Episodes int
	// EpisodeGap is the mean spacing between episode starts. Zero means
	// 140 ms; instances frequently outlive the gap, so episodes overlap.
	EpisodeGap trace.Duration
	// StormProb is the probability an episode is a contention storm
	// (stretched driver work, network stalls, possible hard faults).
	// Zero means 0.35.
	StormProb float64
	// Cores and Workers configure each simulated machine.
	Cores   int
	Workers int
	// MDULocks and FileTableLocks, when positive, fix the lock
	// granularity of every machine instead of randomising it per
	// machine — used by the lock-granularity sweep (§2.2's "reducing
	// the granularity of locks is a general principle").
	MDULocks       int
	FileTableLocks int
	// Parallelism bounds the number of streams generated concurrently.
	// Zero means GOMAXPROCS. Results are identical at any setting:
	// every stream derives from its own seeded generator.
	Parallelism int
	// SlowHW scales the storage-hardware service latencies (disk reads
	// and hard-fault page reads) by the given factor — an injected
	// slow-hardware fault for regression-diff exercises. Zero or one
	// means stock hardware. Only the log-normal medians scale, so the
	// per-stream RNG draw sequence is unchanged and a SlowHW corpus at
	// the same seed stays instance-aligned with the stock corpus.
	SlowHW float64
}

func (c *Config) applyDefaults() {
	if c.Streams <= 0 {
		c.Streams = 120
	}
	if c.Episodes <= 0 {
		c.Episodes = 18
	}
	if c.EpisodeGap <= 0 {
		c.EpisodeGap = 220 * trace.Millisecond
	}
	if c.StormProb <= 0 {
		c.StormProb = 0.35
	}
	if c.Cores <= 0 {
		c.Cores = 8
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
}

// themeWeights orders episode themes roughly as Table 1's instance counts.
var themeWeights = map[string]float64{
	WebPageNavigation:  7.7,
	BrowserTabCreate:   2.5,
	BrowserTabSwitch:   2.2,
	AppAccessControl:   1.5,
	BrowserFrameCreate: 1.3,
	BrowserTabClose:    1.0,
	MenuDisplay:        0.75,
	AppNonResponsive:   0.65,
}

// Generate produces a corpus of simulated trace streams. Streams are
// generated concurrently (bounded by Parallelism) but the corpus layout
// and every byte of every stream are independent of the parallelism:
// each stream has its own seeded generator and a fixed slot.
func Generate(cfg Config) *trace.Corpus {
	cfg.applyDefaults()
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > cfg.Streams {
		par = cfg.Streams
	}
	streams := make([]*trace.Stream, cfg.Streams)
	if par <= 1 {
		for i := range streams {
			streams[i] = generateStream(cfg, i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					streams[i] = generateStream(cfg, i)
				}
			}()
		}
		for i := range streams {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	return &trace.Corpus{Streams: streams}
}

// GenerateStream produces stream index of Generate(cfg)'s corpus on its
// own: every stream derives from its own seeded generator, so
// GenerateStream(cfg, i) is byte-identical to Generate(cfg).Streams[i]
// without materialising the other streams.
func GenerateStream(cfg Config, index int) *trace.Stream {
	cfg.applyDefaults()
	if index < 0 || index >= cfg.Streams {
		panic(fmt.Sprintf("scenario: stream index %d out of range (%d streams)", index, cfg.Streams))
	}
	return generateStream(cfg, index)
}

// GenerateEach generates the corpus stream by stream, delivering each
// to fn in index order. At most Parallelism streams are in flight at
// once, so paper-scale corpora (tens of thousands of streams) never
// coexist in memory — the caller typically appends each stream to a
// directory corpus and drops it. Generation of stream i+Parallelism
// overlaps fn(i), so an I/O-bound fn pipelines with CPU-bound
// generation. A non-nil error from fn stops generation and is returned.
func GenerateEach(cfg Config, fn func(index int, s *trace.Stream) error) error {
	cfg.applyDefaults()
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > cfg.Streams {
		par = cfg.Streams
	}
	if par <= 1 {
		for i := 0; i < cfg.Streams; i++ {
			if err := fn(i, generateStream(cfg, i)); err != nil {
				return err
			}
		}
		return nil
	}
	// A fixed window of par single-use result slots: stream i lands in
	// slot i%par, and the slot is relaunched with stream i+par the
	// moment it is consumed — bounded, ordered, and deadlock-free.
	win := make([]chan *trace.Stream, par)
	launch := func(i int) chan *trace.Stream {
		ch := make(chan *trace.Stream, 1)
		go func() { ch <- generateStream(cfg, i) }()
		return ch
	}
	next := 0
	for ; next < par; next++ {
		win[next] = launch(next)
	}
	for i := 0; i < cfg.Streams; i++ {
		s := <-win[i%par]
		if next < cfg.Streams {
			win[next%par] = launch(next)
			next++
		}
		if err := fn(i, s); err != nil {
			// Drain the in-flight generators before returning so none
			// outlive the call.
			for j := i + 1; j < next; j++ {
				<-win[j%par]
			}
			return err
		}
	}
	return nil
}

func generateStream(cfg Config, index int) *trace.Stream {
	rng := stats.NewRand(cfg.Seed + int64(index)*1_000_003 + 17)
	mcfg := drivers.Config{
		Encrypted:      rng.Bool(0.55),
		AVFilter:       rng.Bool(0.70),
		DiskProtection: rng.Bool(0.08),
		MDULocks:       2 + rng.Intn(4),
		FileTableLocks: 2 + rng.Intn(4),
	}
	if cfg.MDULocks > 0 {
		mcfg.MDULocks = cfg.MDULocks
	}
	if cfg.FileTableLocks > 0 {
		mcfg.FileTableLocks = cfg.FileTableLocks
	}
	lat := drivers.DefaultLatency()
	if cfg.SlowHW > 0 && cfg.SlowHW != 1 {
		lat.DiskRead = trace.Duration(float64(lat.DiskRead) * cfg.SlowHW)
		lat.HardFault = trace.Duration(float64(lat.HardFault) * cfg.SlowHW)
	}
	stack := drivers.NewStack(mcfg, lat, rng)
	k := sim.NewKernel(sim.Config{
		StreamID: fmt.Sprintf("machine-%04d", index),
		Cores:    cfg.Cores,
		Workers:  cfg.Workers,
		// NICs interleave transfers; disks have a shallow queue.
		DeviceChannels: map[string]int{"nic": 8, "disk": 2},
		// The machine-wide service host has a single dispatcher thread;
		// queueing behind it propagates cost across instances.
		PoolSizes: map[string]int{"SvcHost": 1, "Ndis": 8},
	})

	names := Selected()
	weights := make([]float64, len(names))
	for i, n := range names {
		weights[i] = themeWeights[n]
	}

	var at trace.Time
	for ep := 0; ep < cfg.Episodes; ep++ {
		at += trace.Time(rng.Exp(float64(cfg.EpisodeGap)))
		emitEpisode(k, stack, rng, cfg, at, names, weights)
	}
	k.Run(0)
	return k.Finish()
}

// emitEpisode spawns a burst of concurrent scenario instances sharing one
// lock bucket, so they contend and propagate cost to each other.
func emitEpisode(k *sim.Kernel, stack *drivers.Stack, rng *stats.Rand, cfg Config,
	at trace.Time, names []string, weights []float64) {

	bucket := rng.Intn(64)
	severity, netStall := 1.0, 1.0
	hardFault := false
	storm := rng.Bool(cfg.StormProb)

	theme := names[rng.WeightedPick(weights)]
	themeDef, _ := Lookup(theme)
	var nFore, nBack int
	if storm {
		// Storms: many concurrent instances, stretched driver work.
		severity = rng.Uniform(2, 4)
		netStall = rng.Uniform(1.5, 3.5)
		hardFault = rng.Bool(0.30)
		nFore = 5 + rng.Intn(4)
		nBack = 1 + rng.Intn(2)
	} else {
		// Calm periods: little concurrency, normal latencies. These
		// produce the fast contrast class.
		nFore = 1 + rng.Intn(2)
		nBack = rng.Intn(2)
	}

	faultGiven := false
	for i := 0; i < nFore; i++ {
		name := theme
		if i > 0 {
			// Co-instances cluster in the theme's process (several tabs
			// of one browser, say) so they share its application locks;
			// otherwise they are drawn from the selected catalogue or
			// the extra foreground scenarios.
			switch {
			case rng.Bool(0.9):
				if peer, ok := sameProcessPeer(rng, themeDef.Process, names, weights); ok {
					name = peer
				}
			case rng.Bool(0.5):
				name = names[rng.WeightedPick(weights)]
			default:
				extras := Extras()
				name = extras[rng.Intn(len(extras))]
			}
		}
		def, _ := Lookup(name)
		env := &Env{
			Stack: stack,
			Rng:   rng,
			// Instances work on nearby-but-distinct buckets: whether
			// they collide on fs.sys/fv.sys locks depends on the lock
			// granularity (bucket mod lock count), which is what the
			// granularity sweep exercises.
			Bucket: bucket + rng.Intn(4),
			// The application lock is shared episode-wide regardless.
			AppLock:  fmt.Sprintf("app:%s:%d", def.Process, bucket),
			Severity: severity,
			NetStall: netStall,
		}
		if hardFault && !faultGiven && (name == AppNonResponsive || name == BrowserTabSwitch) {
			env.HardFault = true
			faultGiven = true
		}
		spawnInstance(k, rng, name, env, at, i)
	}
	bgNames := Backgrounds()
	for i := 0; i < nBack; i++ {
		name := bgNames[rng.Intn(len(bgNames))]
		def, _ := Lookup(name)
		env := &Env{
			Stack:  stack,
			Rng:    rng,
			Bucket: bucket,
			// Background services serialise on one machine-wide work
			// queue per process (an AV engine has a single scan queue),
			// so overlapping episodes chain through it.
			AppLock:  "app:" + def.Process,
			Severity: severity,
			NetStall: netStall,
		}
		spawnInstance(k, rng, name, env, at, nFore+i)
	}
}

// sameProcessPeer picks a scenario initiated by the given process,
// weighted like the episode themes.
func sameProcessPeer(rng *stats.Rand, process string, names []string, weights []float64) (string, bool) {
	var peers []string
	var w []float64
	for i, n := range names {
		if d, ok := Lookup(n); ok && d.Process == process {
			peers = append(peers, n)
			w = append(w, weights[i])
		}
	}
	if len(peers) == 0 {
		return "", false
	}
	return peers[rng.WeightedPick(w)], true
}

// spawnInstance starts the initiating thread of one scenario instance and
// records its instance tuple when the program completes.
func spawnInstance(k *sim.Kernel, rng *stats.Rand, name string, env *Env, episodeAt trace.Time, ordinal int) {
	def, ok := Lookup(name)
	if !ok {
		panic("scenario: unknown scenario " + name)
	}
	start := episodeAt + trace.Time(rng.Exp(float64(12*trace.Millisecond)))
	program := def.Build(env)
	threadName := "UI"
	if ordinal > 0 {
		threadName = fmt.Sprintf("W%d", ordinal)
	}
	base := []string{def.Process + "!Main"}
	var th *sim.Thread
	th = k.Spawn(def.Process, threadName, base, program, start, func(end trace.Time) {
		k.RecordInstance(trace.Instance{
			Scenario: def.Name,
			TID:      th.TID(),
			Start:    start,
			End:      end,
		})
	})
}
