package scenario

import (
	"tracescope/internal/sim"
	"tracescope/internal/trace"
)

// MotivatingCase replays the real-world case of §2.2 deterministically:
// six threads across four processes, two lock-contention regions
// (fv.sys's FileTable lock and fs.sys's MDU lock), and two hierarchical
// dependencies (fv.sys→fs.sys by function call, fs.sys→se.sys by
// system-service call). The disk service plus se.sys decryption delay on
// the system worker propagates along arrows (1)–(6) of Figure 1 to the
// browser UI thread, which takes over 800 ms to create a tab.
//
// The returned stream records a BrowserTabCreate instance for the UI
// thread and instances for the two victim applications.
func MotivatingCase() *trace.Stream {
	k := sim.NewKernel(sim.Config{StreamID: "motivating-case", Workers: 2})

	const (
		fileTable = "fv:FileTable:0"
		mdu       = "fs:MDU:0"
	)
	ms := func(v float64) trace.Duration { return trace.Duration(v * 1000) }

	spawn := func(scenarioName, proc, threadName string, base []string, at trace.Time, program []sim.Op) *sim.Thread {
		var th *sim.Thread
		th = k.Spawn(proc, threadName, base, program, at, func(end trace.Time) {
			if scenarioName != "" {
				k.RecordInstance(trace.Instance{
					Scenario: scenarioName, TID: th.TID(), Start: at, End: end,
				})
			}
		})
		return th
	}

	// T_{C,W0}: Configuration Manager worker. First to take the MDU lock;
	// while holding it, issues a read served by a system worker running
	// se.sys!ReadDecrypt plus a long disk service (arrows 1 and 2).
	spawn(ConfigSync, "CM", "W0", []string{"CM!Worker"}, 0, sim.Seq(
		sim.Invoke("CM!SyncSettings",
			sim.Invoke("kernel!OpenFile",
				sim.Invoke("fs.sys!AcquireMDU",
					sim.WithLock(mdu,
						sim.Burn(ms(1)),
						sim.Invoke("fs.sys!Read",
							sim.AsyncCall{Body: sim.Seq(
								sim.Invoke("se.sys!ReadDecrypt",
									sim.Burn(ms(160)),
									sim.DeviceOp{Device: "disk", D: ms(620)},
								),
							)},
						),
					)...,
				),
			)),
	))

	// T_{A,W0}: AntiVirus worker. Second in the MDU queue (arrow 3).
	spawn(AVScanBurst, "AV", "W0", []string{"AV!Worker"}, trace.Time(ms(1)), sim.Seq(
		sim.Invoke("AV!ScanBurst",
			sim.Invoke("kernel!OpenFile",
				sim.Invoke("fs.sys!AcquireMDU",
					sim.WithLock(mdu, sim.Burn(ms(8)))...,
				),
			),
		),
	))

	// T_{B,W1}: browser worker. Takes the FileTable lock first and, while
	// holding it, joins the MDU contention (arrows 4 and 5).
	spawn("", "Browser", "W1", []string{"Browser!Worker"}, trace.Time(ms(2)), sim.Seq(
		sim.Invoke("kernel!CreateFile",
			sim.Invoke("fv.sys!QueryFileTable",
				sim.WithLock(fileTable,
					sim.Burn(ms(1)),
					sim.Invoke("fs.sys!AcquireMDU",
						sim.WithLock(mdu, sim.Burn(ms(5)))...,
					),
				)...,
			),
		),
	))

	// T_{B,W0}: browser worker. Second in the FileTable queue (arrow 6).
	spawn("", "Browser", "W0", []string{"Browser!Worker"}, trace.Time(ms(3)), sim.Seq(
		sim.Invoke("kernel!CreateFile",
			sim.Invoke("fv.sys!QueryFileTable",
				sim.WithLock(fileTable, sim.Burn(ms(6)))...,
			),
		),
	))

	// T_{B,UI}: the browser UI thread reacting to "create a new tab".
	// Last in the FileTable queue; receives the accumulated delay.
	spawn(BrowserTabCreate, "Browser", "UI", []string{"Browser!Main"}, trace.Time(ms(4)), sim.Seq(
		sim.Invoke("Browser!TabCreate",
			sim.Burn(ms(5)),
			sim.Invoke("kernel!OpenFile",
				sim.Invoke("fv.sys!QueryFileTable",
					sim.WithLock(fileTable, sim.Burn(ms(2)))...,
				),
			),
			sim.Burn(ms(25)), // finish rendering the tab
		),
	))

	k.Run(0)
	return k.Finish()
}
