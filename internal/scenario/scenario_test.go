package scenario

import (
	"bytes"
	"errors"
	"testing"

	"tracescope/internal/trace"
)

func TestMotivatingCaseShape(t *testing.T) {
	s := MotivatingCase()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var tabCreate *trace.Instance
	for i := range s.Instances {
		if s.Instances[i].Scenario == BrowserTabCreate {
			tabCreate = &s.Instances[i]
		}
	}
	if tabCreate == nil {
		t.Fatal("no BrowserTabCreate instance recorded")
	}
	if d := tabCreate.Duration(); d < 800*trace.Millisecond {
		t.Errorf("tab create took %v, want over 800ms (the paper's case)", d)
	}
	// The chain involves all three drivers.
	want := map[string]bool{
		"fv.sys!QueryFileTable": false,
		"fs.sys!AcquireMDU":     false,
		"se.sys!ReadDecrypt":    false,
	}
	for _, e := range s.Events {
		for _, f := range s.StackStrings(e.Stack) {
			if _, ok := want[f]; ok {
				want[f] = true
			}
		}
	}
	for f, seen := range want {
		if !seen {
			t.Errorf("signature %s never appeared in the trace", f)
		}
	}
}

func TestGenerateSmallCorpus(t *testing.T) {
	cfg := Config{Seed: 42, Streams: 4, Episodes: 6}
	c := Generate(cfg)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumStreams() != 4 {
		t.Fatalf("got %d streams, want 4", c.NumStreams())
	}
	if c.NumInstances() == 0 {
		t.Fatal("no instances generated")
	}
	// Instances must cover several scenarios, and durations must be
	// positive.
	scens := c.Scenarios()
	if len(scens) < 4 {
		t.Errorf("only %d scenarios appeared: %v", len(scens), scens)
	}
	for _, s := range c.Streams {
		for _, in := range s.Instances {
			if in.Duration() <= 0 {
				t.Errorf("instance %v has non-positive duration", in)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, Streams: 2, Episodes: 4})
	b := Generate(Config{Seed: 7, Streams: 2, Episodes: 4})
	if a.NumEvents() != b.NumEvents() {
		t.Fatalf("event counts differ: %d vs %d", a.NumEvents(), b.NumEvents())
	}
	for si := range a.Streams {
		for i := range a.Streams[si].Events {
			if a.Streams[si].Events[i] != b.Streams[si].Events[i] {
				t.Fatalf("stream %d event %d differs", si, i)
			}
		}
	}
	c := Generate(Config{Seed: 8, Streams: 2, Episodes: 4})
	if a.NumEvents() == c.NumEvents() && a.TotalDuration() == c.TotalDuration() {
		t.Error("different seeds produced identical corpora")
	}
}

func TestThresholdsKnown(t *testing.T) {
	for _, name := range Selected() {
		tf, ts, ok := Thresholds(name)
		if !ok {
			t.Errorf("no thresholds for %s", name)
			continue
		}
		if tf <= 0 || ts <= tf {
			t.Errorf("%s: bad thresholds Tfast=%v Tslow=%v", name, tf, ts)
		}
	}
	if _, _, ok := Thresholds("NoSuchScenario"); ok {
		t.Error("unknown scenario reported thresholds")
	}
}

func TestEveryScenarioHasEntryFrame(t *testing.T) {
	for _, name := range All() {
		frame, ok := EntryFrame(name)
		if !ok || frame == "" {
			t.Errorf("%s: no entry frame", name)
			continue
		}
		d, _ := Lookup(name)
		if got := trace.Module(frame); got != d.Process {
			t.Errorf("%s: entry frame module %q != process %q", name, got, d.Process)
		}
	}
	if _, ok := EntryFrame("NoSuch"); ok {
		t.Error("unknown scenario has an entry frame")
	}
}

func TestEntryFramesAppearInGeneratedTraces(t *testing.T) {
	c := Generate(Config{Seed: 12, Streams: 3, Episodes: 8})
	seen := map[string]bool{}
	for _, s := range c.Streams {
		for _, in := range s.Instances {
			if seen[in.Scenario] {
				continue
			}
			frame, _ := EntryFrame(in.Scenario)
			// Some event of the initiating thread inside the window must
			// carry the entry frame.
			for _, e := range s.Events {
				if e.TID != in.TID || e.Time < in.Start || e.Time >= in.End {
					continue
				}
				for _, f := range s.StackStrings(e.Stack) {
					if f == frame {
						seen[in.Scenario] = true
					}
				}
				if seen[in.Scenario] {
					break
				}
			}
			if !seen[in.Scenario] {
				t.Errorf("%s: entry frame %s absent from instance events", in.Scenario, frame)
				seen[in.Scenario] = true // report once
			}
		}
	}
}

func TestGenerateStreamMatchesGenerate(t *testing.T) {
	cfg := Config{Seed: 3, Streams: 6, Episodes: 4}
	corpus := Generate(cfg)
	for _, i := range []int{0, 3, 5} {
		var want, got bytes.Buffer
		if err := corpus.Streams[i].WriteBinary(&want); err != nil {
			t.Fatal(err)
		}
		if err := GenerateStream(cfg, i).WriteBinary(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("GenerateStream(%d) differs from Generate's stream %d", i, i)
		}
	}
}

func TestGenerateEachOrderAndBytes(t *testing.T) {
	cfg := Config{Seed: 3, Streams: 9, Episodes: 3, Parallelism: 4}
	corpus := Generate(cfg)
	var got []int
	err := GenerateEach(cfg, func(i int, s *trace.Stream) error {
		got = append(got, i)
		var a, b bytes.Buffer
		if err := corpus.Streams[i].WriteBinary(&a); err != nil {
			return err
		}
		if err := s.WriteBinary(&b); err != nil {
			return err
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("stream %d differs under GenerateEach", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery out of order: %v", got)
		}
	}
	if len(got) != cfg.Streams {
		t.Fatalf("delivered %d of %d streams", len(got), cfg.Streams)
	}
}

func TestGenerateEachStopsOnError(t *testing.T) {
	cfg := Config{Seed: 1, Streams: 12, Episodes: 2, Parallelism: 3}
	calls := 0
	sentinel := errors.New("stop")
	err := GenerateEach(cfg, func(i int, s *trace.Stream) error {
		calls++
		if i == 4 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("want sentinel error, got %v", err)
	}
	if calls != 5 {
		t.Fatalf("fn called %d times after early stop, want 5", calls)
	}
}
