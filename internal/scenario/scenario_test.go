package scenario

import (
	"testing"

	"tracescope/internal/trace"
)

func TestMotivatingCaseShape(t *testing.T) {
	s := MotivatingCase()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var tabCreate *trace.Instance
	for i := range s.Instances {
		if s.Instances[i].Scenario == BrowserTabCreate {
			tabCreate = &s.Instances[i]
		}
	}
	if tabCreate == nil {
		t.Fatal("no BrowserTabCreate instance recorded")
	}
	if d := tabCreate.Duration(); d < 800*trace.Millisecond {
		t.Errorf("tab create took %v, want over 800ms (the paper's case)", d)
	}
	// The chain involves all three drivers.
	want := map[string]bool{
		"fv.sys!QueryFileTable": false,
		"fs.sys!AcquireMDU":     false,
		"se.sys!ReadDecrypt":    false,
	}
	for _, e := range s.Events {
		for _, f := range s.StackStrings(e.Stack) {
			if _, ok := want[f]; ok {
				want[f] = true
			}
		}
	}
	for f, seen := range want {
		if !seen {
			t.Errorf("signature %s never appeared in the trace", f)
		}
	}
}

func TestGenerateSmallCorpus(t *testing.T) {
	cfg := Config{Seed: 42, Streams: 4, Episodes: 6}
	c := Generate(cfg)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumStreams() != 4 {
		t.Fatalf("got %d streams, want 4", c.NumStreams())
	}
	if c.NumInstances() == 0 {
		t.Fatal("no instances generated")
	}
	// Instances must cover several scenarios, and durations must be
	// positive.
	scens := c.Scenarios()
	if len(scens) < 4 {
		t.Errorf("only %d scenarios appeared: %v", len(scens), scens)
	}
	for _, s := range c.Streams {
		for _, in := range s.Instances {
			if in.Duration() <= 0 {
				t.Errorf("instance %v has non-positive duration", in)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, Streams: 2, Episodes: 4})
	b := Generate(Config{Seed: 7, Streams: 2, Episodes: 4})
	if a.NumEvents() != b.NumEvents() {
		t.Fatalf("event counts differ: %d vs %d", a.NumEvents(), b.NumEvents())
	}
	for si := range a.Streams {
		for i := range a.Streams[si].Events {
			if a.Streams[si].Events[i] != b.Streams[si].Events[i] {
				t.Fatalf("stream %d event %d differs", si, i)
			}
		}
	}
	c := Generate(Config{Seed: 8, Streams: 2, Episodes: 4})
	if a.NumEvents() == c.NumEvents() && a.TotalDuration() == c.TotalDuration() {
		t.Error("different seeds produced identical corpora")
	}
}

func TestThresholdsKnown(t *testing.T) {
	for _, name := range Selected() {
		tf, ts, ok := Thresholds(name)
		if !ok {
			t.Errorf("no thresholds for %s", name)
			continue
		}
		if tf <= 0 || ts <= tf {
			t.Errorf("%s: bad thresholds Tfast=%v Tslow=%v", name, tf, ts)
		}
	}
	if _, _, ok := Thresholds("NoSuchScenario"); ok {
		t.Error("unknown scenario reported thresholds")
	}
}

func TestEveryScenarioHasEntryFrame(t *testing.T) {
	for _, name := range All() {
		frame, ok := EntryFrame(name)
		if !ok || frame == "" {
			t.Errorf("%s: no entry frame", name)
			continue
		}
		d, _ := Lookup(name)
		if got := trace.Module(frame); got != d.Process {
			t.Errorf("%s: entry frame module %q != process %q", name, got, d.Process)
		}
	}
	if _, ok := EntryFrame("NoSuch"); ok {
		t.Error("unknown scenario has an entry frame")
	}
}

func TestEntryFramesAppearInGeneratedTraces(t *testing.T) {
	c := Generate(Config{Seed: 12, Streams: 3, Episodes: 8})
	seen := map[string]bool{}
	for _, s := range c.Streams {
		for _, in := range s.Instances {
			if seen[in.Scenario] {
				continue
			}
			frame, _ := EntryFrame(in.Scenario)
			// Some event of the initiating thread inside the window must
			// carry the entry frame.
			for _, e := range s.Events {
				if e.TID != in.TID || e.Time < in.Start || e.Time >= in.End {
					continue
				}
				for _, f := range s.StackStrings(e.Stack) {
					if f == frame {
						seen[in.Scenario] = true
					}
				}
				if seen[in.Scenario] {
					break
				}
			}
			if !seen[in.Scenario] {
				t.Errorf("%s: entry frame %s absent from instance events", in.Scenario, frame)
				seen[in.Scenario] = true // report once
			}
		}
	}
}
