package scenario

import "testing"

func TestDiagClassSplit(t *testing.T) {
	c := Generate(Config{Seed: 1, Streams: 24, Episodes: 12})
	for _, name := range Selected() {
		tf, ts, _ := Thresholds(name)
		var fast, slow, mid int
		for _, s := range c.Streams {
			for _, in := range s.Instances {
				if in.Scenario != name {
					continue
				}
				d := in.Duration()
				switch {
				case d < tf:
					fast++
				case d > ts:
					slow++
				default:
					mid++
				}
			}
		}
		t.Logf("%-20s total=%4d fast=%4d mid=%4d slow=%4d", name, fast+mid+slow, fast, mid, slow)
	}
}
