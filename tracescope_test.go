package tracescope_test

import (
	"fmt"
	"testing"

	"tracescope"
	"tracescope/workload"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	corpus := tracescope.Generate(tracescope.GenerateConfig{Seed: 2, Streams: 4, Episodes: 6})
	if corpus.NumInstances() == 0 {
		t.Fatal("empty corpus")
	}
	an := tracescope.NewAnalyzer(corpus)

	m := an.Impact(tracescope.AllDrivers(), "")
	if m.IAwait() <= 0 || m.IAwait() >= 1 {
		t.Errorf("IAwait = %v", m.IAwait())
	}

	tf, ts, ok := tracescope.Thresholds(tracescope.WebPageNavigation)
	if !ok {
		t.Fatal("no thresholds")
	}
	res, err := an.Causality(tracescope.CausalityConfig{
		Scenario: tracescope.WebPageNavigation, Tfast: tf, Tslow: ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowCount > 0 && len(res.Patterns) == 0 {
		t.Error("slow class but no patterns")
	}
}

func TestPublicCorpusIO(t *testing.T) {
	dir := t.TempDir()
	corpus := tracescope.Generate(tracescope.GenerateConfig{Seed: 3, Streams: 2, Episodes: 4})
	if err := tracescope.WriteCorpusDir(corpus, dir); err != nil {
		t.Fatal(err)
	}
	got, err := tracescope.ReadCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEvents() != corpus.NumEvents() || got.NumInstances() != corpus.NumInstances() {
		t.Error("round trip lost data")
	}
}

func TestSelectedScenariosHaveThresholds(t *testing.T) {
	names := tracescope.SelectedScenarios()
	if len(names) != 8 {
		t.Fatalf("selected = %d, want 8", len(names))
	}
	for _, n := range names {
		if _, _, ok := tracescope.Thresholds(n); !ok {
			t.Errorf("no thresholds for %s", n)
		}
	}
	if len(tracescope.AllScenarios()) < len(names) {
		t.Error("AllScenarios misses entries")
	}
}

func TestBaselinesPublic(t *testing.T) {
	corpus := tracescope.Generate(tracescope.GenerateConfig{Seed: 4, Streams: 2, Episodes: 4})
	if p, err := tracescope.CallGraphProfile(corpus); err != nil || p.TotalCPU <= 0 {
		t.Error("profile empty")
	}
	if r, err := tracescope.LockContention(corpus, tracescope.AllDrivers()); err != nil || r.TotalWait <= 0 {
		t.Error("contention empty")
	}
}

func TestWorkloadToolkit(t *testing.T) {
	k := workload.NewKernel(workload.KernelConfig{StreamID: "custom"})
	var th *workload.Thread
	th = k.Spawn("App", "UI", []string{"App!Main"}, workload.Seq(
		workload.Invoke("my.sys!DoWork",
			workload.WithLock("my:Lock", workload.Burn(2*workload.Millisecond))...,
		),
	), 0, func(end workload.Time) {
		k.RecordInstance(tracescope.Instance{Scenario: "Custom", TID: th.TID(), Start: 0, End: end})
	})
	k.Run(0)
	s := k.Finish()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	corpus := &tracescope.Corpus{}
	corpus.Add(s)
	m := tracescope.NewAnalyzer(corpus).Impact(tracescope.NewComponentFilter("my.sys"), "")
	if m.Dscn <= 0 {
		t.Error("custom workload not measured")
	}
	if ty, ok := workload.TypeOfFrame("se.sys!X"); !ok || ty.String() != "Storage Encryption" {
		t.Error("TypeOfFrame re-export broken")
	}
}

// ExampleGenerate demonstrates the end-to-end pipeline on a tiny,
// deterministic corpus.
func ExampleGenerate() {
	corpus := tracescope.Generate(tracescope.GenerateConfig{Seed: 1, Streams: 2, Episodes: 4})
	an := tracescope.NewAnalyzer(corpus)
	m := an.Impact(tracescope.AllDrivers(), "")
	fmt.Println("driver waiting dominates driver CPU:", m.IAwait() > m.IArun())
	// Output:
	// driver waiting dominates driver CPU: true
}

// ExampleMotivatingCase replays the paper's §2.2 case: a browser tab
// creation slowed past 800 ms by cost propagation across three drivers.
func ExampleMotivatingCase() {
	stream := tracescope.MotivatingCase()
	for _, in := range stream.Instances {
		if in.Scenario == tracescope.BrowserTabCreate {
			fmt.Println("slow:", in.Duration() > 800*tracescope.Millisecond)
		}
	}
	// Output:
	// slow: true
}

func TestDetectionPublicAPI(t *testing.T) {
	corpus := tracescope.Generate(tracescope.GenerateConfig{Seed: 10, Streams: 2, Episodes: 5})
	d := tracescope.NewDetector(tracescope.CatalogDetectionRules())
	s := corpus.Streams[0]
	detected := d.Instances(s, 50*tracescope.Millisecond)
	if len(detected) == 0 {
		t.Fatal("nothing detected")
	}
	// Detected instances can replace the recorded ones and still support
	// the analysis pipeline.
	stripped := &tracescope.Corpus{}
	for _, src := range corpus.Streams {
		cp := *src
		cp.Instances = d.Instances(src, 50*tracescope.Millisecond)
		stripped.Add(&cp)
	}
	m := tracescope.NewAnalyzer(stripped).Impact(tracescope.AllDrivers(), "")
	if m.IAwait() <= 0 {
		t.Error("detected instances yield no impact signal")
	}
}
