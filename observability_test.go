package tracescope_test

import (
	"bytes"
	"strings"
	"testing"

	"tracescope"
)

// obsPipelineSnapshot runs the instrumented pipeline — impact plus one
// causality analysis over a directory-backed cached source — and
// returns the recorder's snapshot alongside the source's own counters.
// The cache is unbounded so no evictions occur (eviction order under
// concurrent workers is interleaving-dependent) and the recorder has no
// clock, so the snapshot is fully deterministic.
func obsPipelineSnapshot(t *testing.T, dir string, workers int) (tracescope.MetricsSnapshot, tracescope.SourceCacheStats) {
	t.Helper()
	src, err := tracescope.OpenCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cached := tracescope.NewCachedSource(src, 0)
	rec := tracescope.NewMemRecorder()
	an := tracescope.NewAnalyzer(cached,
		tracescope.WithWorkers(workers), tracescope.WithRecorder(rec))
	if m := an.Impact(tracescope.AllDrivers(), ""); m.IAwait() <= 0 {
		t.Fatal("degenerate impact")
	}
	tf, ts, _ := tracescope.Thresholds(tracescope.BrowserTabCreate)
	if _, err := an.Causality(tracescope.CausalityConfig{
		Scenario: tracescope.BrowserTabCreate, Tfast: tf, Tslow: ts,
	}); err != nil {
		t.Fatal(err)
	}
	if err := an.Err(); err != nil {
		t.Fatal(err)
	}
	return rec.Snapshot(), cached.Stats()
}

// TestPipelineSnapshotDeterministic: two identical instrumented runs
// produce byte-identical JSON and Prometheus exports, at both the
// sequential and a parallel worker count.
func TestPipelineSnapshotDeterministic(t *testing.T) {
	dir := t.TempDir()
	corpus := tracescope.Generate(tracescope.GenerateConfig{Seed: 11, Streams: 10, Episodes: 5})
	if err := tracescope.WriteCorpusDir(corpus, dir); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		render := func() (string, string) {
			snap, _ := obsPipelineSnapshot(t, dir, workers)
			var j, p bytes.Buffer
			if err := snap.WriteJSON(&j); err != nil {
				t.Fatal(err)
			}
			if err := snap.WritePrometheus(&p); err != nil {
				t.Fatal(err)
			}
			return j.String(), p.String()
		}
		j1, p1 := render()
		j2, p2 := render()
		if j1 != j2 {
			t.Errorf("workers=%d: JSON snapshots differ:\n%s\n--- vs ---\n%s", workers, j1, j2)
		}
		if p1 != p2 {
			t.Errorf("workers=%d: Prometheus snapshots differ", workers)
		}
		if !strings.Contains(p1, "tracescope_engine_shards_total") {
			t.Errorf("workers=%d: Prometheus export misses engine counters:\n%s", workers, p1)
		}
	}
}

// TestPipelineSnapshotReconciles: the counters of one instrumented run
// agree with each other and with the source's own statistics — every
// decoded stream is a cache miss and a decode span, every engine shard
// is a shard span, and every causality phase ran exactly once.
func TestPipelineSnapshotReconciles(t *testing.T) {
	dir := t.TempDir()
	corpus := tracescope.Generate(tracescope.GenerateConfig{Seed: 12, Streams: 8, Episodes: 5})
	if err := tracescope.WriteCorpusDir(corpus, dir); err != nil {
		t.Fatal(err)
	}
	snap, stats := obsPipelineSnapshot(t, dir, 4)

	decoded := snap.Counter("trace_streams_decoded_total")
	if decoded == 0 {
		t.Fatal("no streams decoded")
	}
	if misses := snap.Counter("source_cache_misses_total"); misses != decoded {
		t.Errorf("cache misses %d != streams decoded %d", misses, decoded)
	}
	if stats.Misses != decoded {
		t.Errorf("source stats misses %d != recorded decodes %d", stats.Misses, decoded)
	}
	if hits := snap.Counter("source_cache_hits_total"); hits != stats.Hits {
		t.Errorf("recorded hits %d != source stats hits %d", hits, stats.Hits)
	}
	if h, ok := snap.Span("trace_decode"); !ok || h.Count != decoded {
		t.Errorf("trace_decode spans != %d decodes", decoded)
	}

	shards := snap.Counter("engine_shards_total")
	var shardSpans int64
	for _, h := range snap.Spans {
		if strings.HasSuffix(h.Name, "_shard") {
			shardSpans += h.Count
		}
	}
	if shards == 0 || shardSpans != shards {
		t.Errorf("shard spans %d != engine_shards_total %d", shardSpans, shards)
	}

	for _, phase := range []string{
		"causality_classify", "causality_enumerate", "causality_select",
		"causality_lift", "causality_rank", "causality_analysis", "impact_analysis",
	} {
		if h, ok := snap.Span(phase); !ok || h.Count != 1 {
			t.Errorf("phase %s recorded %v times, want exactly 1", phase, h.Count)
		}
	}
	if built := snap.Counter("impact_builders_built_total"); built == 0 {
		t.Error("no wait-graph builders recorded")
	}
}
