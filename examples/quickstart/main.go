// Quickstart: generate a small corpus, measure driver impact, and mine
// contrast patterns for one scenario — the whole two-step approach in
// thirty lines.
package main

import (
	"fmt"
	"log"

	"tracescope"
)

func main() {
	// 1. A corpus of simulated ETW-shaped traces: 12 machines, each with
	//    its own driver configuration and workload mix.
	corpus := tracescope.Generate(tracescope.GenerateConfig{
		Seed: 7, Streams: 12, Episodes: 10,
	})
	fmt.Printf("corpus: %d streams, %d scenario instances, %d events\n\n",
		corpus.NumStreams(), corpus.NumInstances(), corpus.NumEvents())

	an := tracescope.NewAnalyzer(corpus)

	// 2. Impact analysis (§3): how much do device drivers ("*.sys")
	//    affect overall performance?
	m := an.Impact(tracescope.AllDrivers(), "")
	fmt.Printf("impact: %v\n", m)
	fmt.Printf("  waiting on drivers:   %5.1f%% of scenario time (paper: 36.4%%)\n", m.IAwait()*100)
	fmt.Printf("  driver CPU:           %5.1f%% (paper: 1.6%%)\n", m.IArun()*100)
	fmt.Printf("  cost propagation:     %5.1f%% (paper: 26%%)\n\n", m.IAopt()*100)

	// 3. Causality analysis (§4): what driver behaviours make
	//    BrowserTabCreate slow?
	tfast, tslow, _ := tracescope.Thresholds(tracescope.BrowserTabCreate)
	res, err := an.Causality(tracescope.CausalityConfig{
		Scenario: tracescope.BrowserTabCreate,
		Tfast:    tfast, // < 300ms is fast
		Tslow:    tslow, // > 500ms is slow
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("causality: %d instances (%d fast, %d slow), %d contrast patterns\n",
		res.Instances, res.FastCount, res.SlowCount, len(res.Patterns))
	for i, p := range res.Patterns {
		if i >= 5 {
			break
		}
		fmt.Printf("  #%d avg=%-9v N=%-4d %s\n", i+1, p.AvgC(), p.N, p.Tuple)
	}
}
