// Customdriver shows how to model your own driver and workload with the
// public workload toolkit, then run the tracescope analyses on the
// emitted traces.
//
// The synthetic "usb.sys" driver here serialises all requests on one
// global lock while occasionally performing a slow firmware round-trip —
// a classic coarse-lock bottleneck. The causality analysis surfaces it
// without being told anything about usb.sys.
package main

import (
	"fmt"
	"log"

	"tracescope"
	"tracescope/workload"
)

const ms = workload.Millisecond

// usbQuery models one request through the custom driver: the global
// device lock, bookkeeping CPU, and sometimes a slow firmware read.
func usbQuery(rng *workload.Rand, slow bool) workload.Op {
	body := []workload.Op{workload.Burn(workload.Duration(rng.Uniform(100, 400)))}
	if slow {
		body = append(body, workload.DeviceOp{
			Device: "usbhc",
			D:      workload.Duration(rng.Uniform(20, 80)) * ms,
		})
	}
	return workload.Invoke("usb.sys!SubmitRequest",
		workload.WithLock("usb:Global", body...)...)
}

func main() {
	corpus := &tracescope.Corpus{}
	rng := workload.NewRand(42)

	for machine := 0; machine < 10; machine++ {
		k := workload.NewKernel(workload.KernelConfig{
			StreamID: fmt.Sprintf("usb-machine-%d", machine),
		})
		// Each machine runs bursts of "DeviceSettingsOpen": app compute
		// plus two queries through usb.sys. Concurrent bursts contend
		// the driver's global lock; slow firmware reads propagate to
		// every queued thread.
		for burst := 0; burst < 8; burst++ {
			at := workload.Time(burst) * workload.Time(150*ms)
			n := 1 + rng.Intn(4)
			for i := 0; i < n; i++ {
				slow := rng.Bool(0.25)
				start := at + workload.Time(rng.Intn(int(5*ms)))
				program := workload.Seq(
					workload.Invoke("Settings!Open",
						workload.Burn(workload.Duration(rng.Uniform(10, 30))*ms),
						usbQuery(rng, slow),
						usbQuery(rng, false),
						workload.Burn(workload.Duration(rng.Uniform(5, 15))*ms),
					),
				)
				var th *workload.Thread
				th = k.Spawn("Settings", fmt.Sprintf("T%d", i), []string{"Settings!Main"},
					program, start, func(end workload.Time) {
						k.RecordInstance(tracescope.Instance{
							Scenario: "DeviceSettingsOpen",
							TID:      th.TID(),
							Start:    start,
							End:      end,
						})
					})
			}
		}
		k.Run(0)
		corpus.Add(k.Finish())
	}

	an := tracescope.NewAnalyzer(corpus)

	// Impact of the custom driver alone.
	m := an.Impact(tracescope.NewComponentFilter("usb.sys"), "")
	fmt.Printf("usb.sys impact: %v\n\n", m)

	// Causality with thresholds for the custom scenario.
	res, err := an.Causality(tracescope.CausalityConfig{
		Scenario: "DeviceSettingsOpen",
		Tfast:    40 * ms,
		Tslow:    90 * ms,
		Filter:   tracescope.NewComponentFilter("usb.sys"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DeviceSettingsOpen: %d instances (%d fast, %d slow), %d patterns\n",
		res.Instances, res.FastCount, res.SlowCount, len(res.Patterns))
	for i, p := range res.Patterns {
		if i >= 3 {
			break
		}
		fmt.Printf("  #%d avg=%-9v N=%-4d %s\n", i+1, p.AvgC(), p.N, p.Tuple)
	}
	fmt.Println("\nThe global usb:Global lock surfaces as the contrast pattern's wait")
	fmt.Println("signature — the coarse-lock bottleneck, found without prior knowledge.")
}
