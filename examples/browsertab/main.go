// Browsertab replays the paper's §2.2 motivating case: a browser tab
// creation that takes over 800 ms because a disk-plus-decryption delay on
// a system worker thread propagates through two lock-contention regions
// (fs.sys's MDU lock, fv.sys's FileTable lock) and two hierarchical
// driver dependencies up to the UI thread.
//
// It prints the Figure 1 thread-level snapshot, the Figure 2 Aggregated
// Wait Graph, and the §2.3 Signature Set Tuple that the causality
// analysis would hand a performance analyst.
package main

import (
	"fmt"
	"os"

	"tracescope"
	"tracescope/internal/awg"
	"tracescope/internal/report"
	"tracescope/internal/waitgraph"
)

func main() {
	stream := tracescope.MotivatingCase()

	var tab tracescope.Instance
	for _, in := range stream.Instances {
		if in.Scenario == tracescope.BrowserTabCreate {
			tab = in
		}
	}
	fmt.Printf("BrowserTabCreate took %v — the user watches the tab spinner.\n", tab.Duration())
	fmt.Printf("Why? Six threads, two contention regions, one slow encrypted read:\n\n")

	// Figure 1: the thread-level snapshot.
	if err := report.WriteThreadSnapshot(os.Stdout, stream, 0,
		tracescope.Time(stream.Duration()), 4); err != nil {
		panic(err)
	}

	// The critical path: where the UI thread's 791 ms actually went —
	// the paper's arrows (1)–(6), walked from the victim's side.
	b := waitgraph.NewBuilder(stream, 0, waitgraph.Options{})
	var graphs []*waitgraph.Graph
	for _, in := range stream.Instances {
		g := b.Instance(in)
		graphs = append(graphs, g)
		if in.Scenario == tracescope.BrowserTabCreate {
			if err := waitgraph.WriteCriticalPath(os.Stdout, g, g.CriticalPath()); err != nil {
				panic(err)
			}
			fmt.Println()
		}
	}
	g := awg.Aggregate(graphs, tracescope.AllDrivers(), awg.DefaultOptions())
	fmt.Println("Aggregated Wait Graph (Figure 2):")
	if err := g.WriteText(os.Stdout, 10); err != nil {
		panic(err)
	}

	fmt.Println("The §2.3 pattern a performance analyst receives:")
	fmt.Println("  wait    {fv.sys!QueryFileTable, fs.sys!AcquireMDU}")
	fmt.Println("  unwait  {fv.sys!QueryFileTable, fs.sys!AcquireMDU}")
	fmt.Println("  running {se.sys!ReadDecrypt, DiskService}")
	fmt.Println("\nReducing lock granularity in fv.sys/fs.sys is the general fix (§2.2).")
}
