// Fixverify demonstrates the closing loop of the paper's workflow: after
// the causality analysis points at coarse fs.sys/fv.sys locking (§2.2's
// "reducing the granularity of locks is a general principle"), the
// developer ships finer-grained locks — and verifies the fix by diffing
// the discovered patterns before and after.
package main

import (
	"fmt"
	"log"

	"tracescope"
)

func analyze(locks int) *tracescope.CausalityResult {
	corpus := tracescope.Generate(tracescope.GenerateConfig{
		Seed: 21, Streams: 20, Episodes: 10,
		// Fix every machine's lock granularity so the two runs are
		// comparable.
		MDULocks: locks, FileTableLocks: locks,
	})
	an := tracescope.NewAnalyzer(corpus)
	tf, ts, _ := tracescope.Thresholds(tracescope.BrowserTabCreate)
	res, err := an.Causality(tracescope.CausalityConfig{
		Scenario: tracescope.BrowserTabCreate, Tfast: tf, Tslow: ts,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  locks=%d: %d instances, %d slow, %d patterns\n",
		locks, res.Instances, res.SlowCount, len(res.Patterns))
	return res
}

func main() {
	fmt.Println("before: one lock per table (coarse)")
	before := analyze(1)
	fmt.Println("after: eight locks per table (fine)")
	after := analyze(8)

	d := tracescope.DiffPatterns(before, after)
	fmt.Printf("\npattern movement after the fix:\n")
	fmt.Printf("  resolved:   %d (worth %v of slow-class wait)\n", len(d.Resolved), d.TotalResolvedCost())
	fmt.Printf("  improved:   %d\n", len(d.Improved))
	fmt.Printf("  stable:     %d\n", len(d.Stable))
	fmt.Printf("  regressed:  %d\n", len(d.Regressed))
	fmt.Printf("  introduced: %d\n", len(d.Introduced))

	if len(d.Improved) > 0 {
		c := d.Improved[0]
		fmt.Printf("\nbiggest improvement (x%.2f):\n  %s\n", c.Ratio(), c.After.Describe())
	}
	if len(d.Resolved) > 0 {
		fmt.Printf("\nexample resolved pattern:\n  %s\n", d.Resolved[0].Describe())
	}
}
