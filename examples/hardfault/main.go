// Hardfault reproduces the paper's §5.2.4 case: in the AppNonResponsive
// scenario, a suspicious pattern joins graphics.sys with the file-system
// and storage-encryption drivers — drivers that should never interact.
// The explanation is a hard fault: graphics.sys touched paged memory
// while holding GPU resources, and the page read went through se.sys on
// an encrypted machine, freezing the UI for seconds.
package main

import (
	"fmt"
	"log"

	"tracescope"
	"tracescope/internal/drivers"
)

func main() {
	corpus := tracescope.Generate(tracescope.GenerateConfig{
		Seed: 3, Streams: 32, Episodes: 12,
	})
	an := tracescope.NewAnalyzer(corpus)

	tfast, tslow, _ := tracescope.Thresholds(tracescope.AppNonResponsive)
	res, err := an.Causality(tracescope.CausalityConfig{
		Scenario: tracescope.AppNonResponsive,
		Tfast:    tfast,
		Tslow:    tslow,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AppNonResponsive: %d instances, %d slow, %d patterns\n\n",
		res.Instances, res.SlowCount, len(res.Patterns))

	// Hunt for the suspicious pattern: graphics signatures joined with
	// storage-encryption signatures.
	for i, p := range res.Patterns {
		var hasGraphics, hasSE bool
		for _, sig := range p.Tuple.Signatures() {
			switch ty, _ := drivers.TypeOfFrame(sig); ty {
			case drivers.Graphics:
				hasGraphics = true
			case drivers.StorageEncryption:
				hasSE = true
			}
		}
		if hasGraphics && hasSE {
			fmt.Printf("rank %d/%d: graphics.sys meets se.sys — highly suspicious (§5.2.4)\n",
				i+1, len(res.Patterns))
			fmt.Printf("  avg=%v maxExec=%v N=%d\n  %s\n\n", p.AvgC(), p.MaxExec, p.N, p.Tuple)
			break
		}
	}

	// Find the concrete worst instance, the paper's 4.73-second freeze.
	var worst tracescope.Instance
	for _, ref := range corpus.InstancesOf(tracescope.AppNonResponsive) {
		_, in := corpus.Instance(ref)
		if in.Duration() > worst.Duration() {
			worst = in
		}
	}
	fmt.Printf("worst AppNonResponsive instance: %v (paper's exemplar: 4.73s)\n", worst.Duration())
	fmt.Println("lesson (§5.2.4): drivers should minimise paged memory to avoid")
	fmt.Println("hard faults whose page reads propagate through the storage stack.")
}
