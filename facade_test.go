package tracescope_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"tracescope"
	"tracescope/internal/report"
)

// facadeCorpus is shared by the facade-level equivalence tests.
func facadeCorpus(t *testing.T) *tracescope.Corpus {
	t.Helper()
	return tracescope.Generate(tracescope.GenerateConfig{Seed: 9, Streams: 12, Episodes: 6})
}

// runFacadePipeline drives one impact plus one causality analysis and
// returns everything the comparison needs.
func runFacadePipeline(t *testing.T, an *tracescope.Analyzer) (tracescope.ImpactMetrics, *tracescope.CausalityResult) {
	t.Helper()
	m := an.Impact(tracescope.AllDrivers(), "")
	tf, ts, ok := tracescope.Thresholds(tracescope.BrowserTabCreate)
	if !ok {
		t.Fatal("no thresholds for BrowserTabCreate")
	}
	res, err := an.Causality(tracescope.CausalityConfig{
		Scenario: tracescope.BrowserTabCreate, Tfast: tf, Tslow: ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

// compareCausality asserts two causality results are bit-for-bit
// identical: ranked patterns, the rendered slow-class AWG, and every
// scalar field.
func compareCausality(t *testing.T, label string, got, want *tracescope.CausalityResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Patterns, want.Patterns) {
		t.Errorf("%s: ranked patterns differ (%d vs %d)", label, len(got.Patterns), len(want.Patterns))
		return
	}
	render := func(g *tracescope.AWG) string {
		if g == nil {
			return "<nil>"
		}
		var buf bytes.Buffer
		if err := g.WriteText(&buf, 64); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if g, w := render(got.SlowAWG), render(want.SlowAWG); g != w {
		t.Errorf("%s: slow-class AWG differs", label)
		return
	}
	g, w := *got, *want
	g.SlowAWG, w.SlowAWG = nil, nil
	g.Patterns, w.Patterns = nil, nil
	if !reflect.DeepEqual(g, w) {
		t.Errorf("%s: result fields differ:\n  got  %+v\n  want %+v", label, g, w)
	}
}

// TestNewAnalyzerWorkerAndRecorderInvariance: the variadic constructor
// produces bit-for-bit identical analyses at the sequential and a
// parallel worker count, with and without a recorder attached.
func TestNewAnalyzerWorkerAndRecorderInvariance(t *testing.T) {
	corpus := facadeCorpus(t)
	mSeq, resSeq := runFacadePipeline(t,
		tracescope.NewAnalyzer(corpus, tracescope.WithWorkers(1)))
	for _, workers := range []int{1, 4} {
		mNew, resNew := runFacadePipeline(t,
			tracescope.NewAnalyzer(corpus, tracescope.WithWorkers(workers)))
		if mNew != mSeq {
			t.Errorf("workers=%d: impact differs:\n  parallel   %v\n  sequential %v", workers, mNew, mSeq)
		}
		compareCausality(t, "parallel vs sequential", resNew, resSeq)

		// Attaching a recorder must not perturb results either.
		mRec, resRec := runFacadePipeline(t,
			tracescope.NewAnalyzer(corpus,
				tracescope.WithWorkers(workers),
				tracescope.WithRecorder(tracescope.NewMemRecorder())))
		if mRec != mNew {
			t.Errorf("workers=%d: recorder changed impact:\n  with %v\n  without %v", workers, mRec, mNew)
		}
		compareCausality(t, "recorded vs plain", resRec, resNew)
	}
}

// TestFacadeDiffByteDeterminism drives the one-entry Diff facade and
// pins its determinism contract at the rendered-bytes level: the JSON
// regression report is identical at any worker count and for a
// stream-order-shuffled copy of the candidate corpus, and the injected
// slow-hardware fault surfaces in the ranked regressions.
func TestFacadeDiffByteDeterminism(t *testing.T) {
	base := facadeCorpus(t)
	cand := tracescope.Generate(tracescope.GenerateConfig{Seed: 9, Streams: 12, Episodes: 6, SlowHW: 3})

	render := func(res *tracescope.DiffResult) string {
		t.Helper()
		var buf bytes.Buffer
		if err := report.WriteDiffJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq, err := tracescope.Diff(base, cand, tracescope.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want := render(seq)
	if len(seq.TopRegressions) == 0 {
		t.Fatal("no ranked regressions against the slow-hardware corpus")
	}

	par, err := tracescope.Diff(base, cand, tracescope.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := render(par); got != want {
		t.Error("workers=4 report differs byte-for-byte from the sequential run")
	}

	// A candidate corpus with the same streams in a shuffled order must
	// produce the identical report: the diff aggregates per scenario, so
	// stream order is immaterial.
	perm := rand.New(rand.NewSource(2)).Perm(len(cand.Streams))
	shuffled := make([]*tracescope.Stream, len(cand.Streams))
	for i, p := range perm {
		shuffled[i] = cand.Streams[p]
	}
	res, err := tracescope.Diff(base, &tracescope.Corpus{Streams: shuffled}, tracescope.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Error("shuffled-stream-order candidate changes the report bytes")
	}
}
