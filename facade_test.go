package tracescope_test

import (
	"bytes"
	"reflect"
	"testing"

	"tracescope"
)

// facadeCorpus is shared by the facade-level equivalence tests.
func facadeCorpus(t *testing.T) *tracescope.Corpus {
	t.Helper()
	return tracescope.Generate(tracescope.GenerateConfig{Seed: 9, Streams: 12, Episodes: 6})
}

// runFacadePipeline drives one impact plus one causality analysis and
// returns everything the comparison needs.
func runFacadePipeline(t *testing.T, an *tracescope.Analyzer) (tracescope.ImpactMetrics, *tracescope.CausalityResult) {
	t.Helper()
	m := an.Impact(tracescope.AllDrivers(), "")
	tf, ts, ok := tracescope.Thresholds(tracescope.BrowserTabCreate)
	if !ok {
		t.Fatal("no thresholds for BrowserTabCreate")
	}
	res, err := an.Causality(tracescope.CausalityConfig{
		Scenario: tracescope.BrowserTabCreate, Tfast: tf, Tslow: ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

// compareCausality asserts two causality results are bit-for-bit
// identical: ranked patterns, the rendered slow-class AWG, and every
// scalar field.
func compareCausality(t *testing.T, label string, got, want *tracescope.CausalityResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Patterns, want.Patterns) {
		t.Errorf("%s: ranked patterns differ (%d vs %d)", label, len(got.Patterns), len(want.Patterns))
		return
	}
	render := func(g *tracescope.AWG) string {
		if g == nil {
			return "<nil>"
		}
		var buf bytes.Buffer
		if err := g.WriteText(&buf, 64); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if g, w := render(got.SlowAWG), render(want.SlowAWG); g != w {
		t.Errorf("%s: slow-class AWG differs", label)
		return
	}
	g, w := *got, *want
	g.SlowAWG, w.SlowAWG = nil, nil
	g.Patterns, w.Patterns = nil, nil
	if !reflect.DeepEqual(g, w) {
		t.Errorf("%s: result fields differ:\n  got  %+v\n  want %+v", label, g, w)
	}
}

// TestNewAnalyzerEquivalentToDeprecatedForms: the variadic constructor
// and the deprecated NewAnalyzerOptions form produce bit-for-bit
// identical analyses at both the sequential and a parallel worker
// count, with and without a recorder attached.
func TestNewAnalyzerEquivalentToDeprecatedForms(t *testing.T) {
	corpus := facadeCorpus(t)
	for _, workers := range []int{1, 4} {
		mNew, resNew := runFacadePipeline(t,
			tracescope.NewAnalyzer(corpus, tracescope.WithWorkers(workers)))
		mOld, resOld := runFacadePipeline(t,
			tracescope.NewAnalyzerOptions(corpus, tracescope.AnalyzerOptions{Workers: workers}))
		if mNew != mOld {
			t.Errorf("workers=%d: impact differs:\n  new %v\n  old %v", workers, mNew, mOld)
		}
		compareCausality(t, "new vs deprecated", resNew, resOld)

		// Attaching a recorder must not perturb results either.
		mRec, resRec := runFacadePipeline(t,
			tracescope.NewAnalyzer(corpus,
				tracescope.WithWorkers(workers),
				tracescope.WithRecorder(tracescope.NewMemRecorder())))
		if mRec != mNew {
			t.Errorf("workers=%d: recorder changed impact:\n  with %v\n  without %v", workers, mRec, mNew)
		}
		compareCausality(t, "recorded vs plain", resRec, resNew)
	}
}
